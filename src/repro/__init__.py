"""repro — a reproduction of TraSS (ICDE 2022).

TraSS is an efficient framework for trajectory similarity search on
key-value data stores.  This package reimplements the full system in
Python: the XZ* spatial index with its bijective integer encoding, the
global-pruning / local-filtering query pipeline for threshold and top-k
similarity search under discrete Fréchet, Hausdorff and DTW, an
embedded HBase-like key-value store substrate, and the baselines the
paper compares against.

Quick start::

    from repro import TraSS, Trajectory

    engine = TraSS.build([Trajectory("t1", [(116.30, 39.90), (116.32, 39.91)])])
    hits = engine.threshold_search(
        Trajectory("q", [(116.31, 39.90), (116.33, 39.91)]), eps=0.05
    )
"""

from repro.core.config import TraSSConfig
from repro.core.engine import TraSS
from repro.exceptions import (
    ClusterError,
    DegradedResult,
    EncodingError,
    FatalError,
    GeometryError,
    IndexingError,
    KVStoreError,
    Overloaded,
    OverloadedError,
    QueryError,
    RegionUnavailableError,
    ReproError,
    ScanTimeoutError,
    ShardUnavailableError,
    TransientError,
)
from repro.kvstore.faults import FaultInjector, FaultSchedule, SimulatedCrash
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.xz2 import XZ2Index
from repro.index.xzstar import XZStarIndex
from repro.core.join import JoinResult, similarity_join
from repro.measures import available_measures, get_measure
from repro.obs import (
    ExplainAnalyzeReport,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    explain_analyze,
    format_span_tree,
)

__version__ = "1.0.0"

__all__ = [
    "TraSS",
    "TraSSConfig",
    "Trajectory",
    "Point",
    "MBR",
    "SpaceBounds",
    "XZStarIndex",
    "XZ2Index",
    "available_measures",
    "similarity_join",
    "JoinResult",
    "get_measure",
    "ReproError",
    "GeometryError",
    "IndexingError",
    "EncodingError",
    "KVStoreError",
    "QueryError",
    "TransientError",
    "FatalError",
    "DegradedResult",
    "RegionUnavailableError",
    "ScanTimeoutError",
    "ClusterError",
    "ShardUnavailableError",
    "OverloadedError",
    "Overloaded",
    "FaultInjector",
    "FaultSchedule",
    "SimulatedCrash",
    "ExplainAnalyzeReport",
    "MetricsRegistry",
    "SlowQueryLog",
    "Tracer",
    "explain_analyze",
    "format_span_tree",
    "__version__",
]
