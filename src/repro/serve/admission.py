"""Admission control: the serving tier's front door.

Two independent gates, both optional, both shedding with *typed*
:class:`~repro.exceptions.OverloadedError` rejections so overload
degrades into fast failures instead of unbounded queueing:

* **per-tenant token buckets** — each tenant refills at
  ``tenant_rate`` requests/second up to a ``tenant_burst`` reserve;
  an empty bucket rejects with ``reason="quota"`` and an honest
  ``retry_after_seconds`` estimate;
* **queue-depth shedding** — at most ``max_in_flight`` requests may be
  inside the coordinator at once; beyond that the request is rejected
  immediately with ``reason="queue_depth"`` (no retry-after: depth
  clears as soon as in-flight work drains, not on a clock).

The clock is injectable so the bucket arithmetic is testable without
sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import ClusterError, OverloadedError


class TokenBucket:
    """A standard token bucket on an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ClusterError(f"rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ClusterError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def try_take(self, n: float = 1.0):
        """``(True, 0.0)`` and debit on success; ``(False, retry_after)``
        otherwise.  ``retry_after`` is ``None`` when the bucket never
        refills (``rate == 0``)."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True, 0.0
        if self.rate <= 0:
            return False, None
        return False, (n - self.tokens) / self.rate


class AdmissionController:
    """Gate keeper in front of the coordinator's query methods.

    ``None`` for either knob disables that gate; the default controller
    admits everything (the bench path constructs clusters without
    limits and flips them on only for the overload drill).
    """

    def __init__(
        self,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        max_in_flight: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_in_flight is not None and max_in_flight < 1:
            raise ClusterError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            tenant_burst
            if tenant_burst is not None
            else (tenant_rate if tenant_rate else None)
        )
        self.max_in_flight = max_in_flight
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.in_flight = 0
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_queue_depth = 0

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str = "default") -> None:
        """Admit one request or raise :class:`OverloadedError`.

        Depth is checked first: a full queue sheds even tenants with
        quota to spend, because queue depth protects the *server* while
        quotas arbitrate between tenants.
        """
        with self._lock:
            if (
                self.max_in_flight is not None
                and self.in_flight >= self.max_in_flight
            ):
                self.rejected_queue_depth += 1
                raise OverloadedError(
                    f"{self.in_flight} requests in flight "
                    f"(max {self.max_in_flight})",
                    tenant=tenant,
                    reason="queue_depth",
                )
            if self.tenant_rate is not None:
                ok, retry_after = self._bucket(tenant).try_take(1.0)
                if not ok:
                    self.rejected_quota += 1
                    raise OverloadedError(
                        f"tenant {tenant!r} exceeded "
                        f"{self.tenant_rate}/s (burst {self.tenant_burst})",
                        tenant=tenant,
                        reason="quota",
                        retry_after_seconds=retry_after,
                    )
            self.in_flight += 1
            self.admitted += 1

    def release(self) -> None:
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "in_flight": self.in_flight,
                "admitted": self.admitted,
                "rejected_quota": self.rejected_quota,
                "rejected_queue_depth": self.rejected_queue_depth,
                "tenants": len(self._buckets),
            }
