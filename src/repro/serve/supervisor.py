"""Process supervision for shard workers.

The supervisor owns the process lifecycle: spawning each replica from
its :class:`~repro.serve.worker.WorkerSpec`, replacing dead replicas
(bounded by ``max_restarts`` per slot, so a crash-looping worker cannot
restart forever), and tearing everything down.  Routing, failover and
retry policy live in the coordinator — the supervisor only answers
"give me a live process for this spec".
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ClusterError
from repro.serve.worker import WorkerSpec, worker_main


def _mp_context():
    """Fork where available (cheap worker startup), spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass(eq=False)  # identity semantics: handles live in sets/dicts
class ReplicaHandle:
    """A live (or recently dead) worker process plus its pipe."""

    spec: WorkerSpec
    process: object
    conn: object
    restarts: int = 0

    @property
    def partition(self) -> int:
        return self.spec.partition

    @property
    def replica(self) -> int:
        return self.spec.replica

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker — the chaos drill's entry point."""
        self.process.kill()
        self.process.join(timeout=5.0)


class ShardSupervisor:
    """Spawns and replaces shard worker processes."""

    def __init__(self, max_restarts: int = 3):
        if max_restarts < 0:
            raise ClusterError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.max_restarts = max_restarts
        self.ctx = _mp_context()
        #: (partition, replica) -> restart count, survives handle swaps
        self._restart_counts: Dict[Tuple[int, int], int] = {}
        self.total_restarts = 0
        self._handles: List[ReplicaHandle] = []

    def spawn(self, spec: WorkerSpec) -> ReplicaHandle:
        parent_conn, child_conn = self.ctx.Pipe()
        process = self.ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"trass-shard-p{spec.partition}r{spec.replica}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = ReplicaHandle(
            spec=spec,
            process=process,
            conn=parent_conn,
            restarts=self._restart_counts.get(
                (spec.partition, spec.replica), 0
            ),
        )
        self._handles.append(handle)
        return handle

    def restart(self, handle: ReplicaHandle) -> Optional[ReplicaHandle]:
        """Replace a dead replica; ``None`` once its budget is spent."""
        slot = (handle.partition, handle.replica)
        used = self._restart_counts.get(slot, 0)
        if used >= self.max_restarts:
            return None
        self._restart_counts[slot] = used + 1
        self.total_restarts += 1
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle in self._handles:
            self._handles.remove(handle)
        replacement = self.spawn(handle.spec)
        replacement.restarts = used + 1
        return replacement

    def stop_all(self, timeout: float = 5.0) -> None:
        for handle in self._handles:
            try:
                handle.conn.close()
            except OSError:
                pass
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - stuck child
                handle.process.kill()
                handle.process.join(timeout=timeout)
        self._handles.clear()
