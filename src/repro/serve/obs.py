"""Coordinator-side observability aggregation for the serving tier.

The worker processes already run full single-process observability
stacks — ``IOMetrics``, metrics registries, heatmaps, slow-query logs —
but those live behind a pipe.  This module is the coordinator's
accumulator for everything that crosses it:

* **reply deltas** — every successful query reply carries the worker's
  full ``IOMetrics`` counter delta for that request; they are summed
  per ``(partition, replica)`` slot and rolled up cluster-wide, so the
  coordinator's accounting matches the single-process engine
  field-for-field.
* **heartbeats** — a ``stats`` request returns the worker's cumulative
  snapshot (metrics registry, heatmap grid, slow-query log); the
  latest snapshot per slot is kept, and worker heatmap grids merge
  *heat-conservingly* into one cluster heatmap (grids are element-wise
  sums over the same salted-key buckets, so total heat is the sum of
  worker heats).
* **latency SLOs** — fixed-bucket histograms (the
  :class:`~repro.obs.registry.Histogram` the engine already uses) for
  admission wait, scatter fan-out, per-partition service, hedge wait,
  merge time and end-to-end query time, with p50/p95/p99 estimates and
  error-budget burn counters against a configurable objective.

Everything here is read-model only: the aggregate is fed from data the
query path already produced, never consulted by it, so answers are
byte-identical whether the aggregate exists or not — and when the
cluster is built without observability none of this is allocated
(the zero-cost-when-off contract).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import Histogram

#: SLO histogram keys -> help text; exported as
#: ``trass.serve.slo.{key}_seconds``
SLO_HISTOGRAM_HELP: Dict[str, str] = {
    "admission_wait": "seconds a query spent in the admission gate",
    "fanout": "scatter wall seconds (first send to last gather)",
    "partition_service": "per-partition service seconds (launch to reply)",
    "hedge_wait": "seconds a query stalled before a hedge was sent",
    "merge": "coordinator merge seconds",
    "query": "end-to-end coordinator query seconds",
}


class ClusterObservability:
    """The coordinator's aggregation point for cluster-wide telemetry.

    ``slo_objective_seconds`` is the per-query latency objective;
    ``slo_target`` the fraction of queries that must meet it (the SLO).
    A query is *good* when it completes inside the objective with no
    skipped ranges; the error-budget burn rate is the observed bad
    fraction over the allowed bad fraction (``1 - slo_target``) — burn
    > 1 means the budget is being spent faster than the SLO allows.
    """

    def __init__(
        self,
        slo_objective_seconds: float = 0.5,
        slo_target: float = 0.99,
    ):
        if slo_objective_seconds <= 0:
            raise ValueError(
                f"slo_objective_seconds must be > 0, "
                f"got {slo_objective_seconds}"
            )
        if not 0.0 < slo_target < 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1), got {slo_target}"
            )
        self.slo_objective_seconds = float(slo_objective_seconds)
        self.slo_target = float(slo_target)
        self.histograms: Dict[str, Histogram] = {
            key: Histogram(f"trass.serve.slo.{key}_seconds", help)
            for key, help in SLO_HISTOGRAM_HELP.items()
        }
        self.slo_good = 0
        self.slo_bad = 0
        #: (partition, replica slot) -> {"queries", "io": {field: sum}}
        self.workers: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: (partition, replica slot) -> latest heartbeat payload
        self.heartbeats: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: partition -> [service seconds sum, reply count]
        self.partition_service: Dict[int, List[float]] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe_slo(self, key: str, seconds: float) -> None:
        self.histograms[key].observe(seconds)

    def observe_query(self, seconds: float, ok: bool = True) -> None:
        """One finished query against the SLO: latency histogram plus
        the error-budget good/bad tally."""
        self.histograms["query"].observe(seconds)
        if ok and seconds <= self.slo_objective_seconds:
            self.slo_good += 1
        else:
            self.slo_bad += 1

    def observe_partition_service(
        self, partition: int, seconds: float
    ) -> None:
        bucket = self.partition_service.setdefault(partition, [0.0, 0])
        bucket[0] += seconds
        bucket[1] += 1
        self.histograms["partition_service"].observe(seconds)

    def absorb_reply(
        self, partition: int, slot: int, payload: Any
    ) -> None:
        """Fold one successful reply's ``IOMetrics`` delta into the
        slot's running totals."""
        agg = self.workers.setdefault(
            (partition, slot), {"queries": 0, "io": {}}
        )
        agg["queries"] += 1
        delta = getattr(payload, "io_delta", None)
        if delta:
            io = agg["io"]
            for field, value in delta.items():
                io[field] = io.get(field, 0) + value

    def absorb_heartbeat(
        self, partition: int, slot: int, snapshot: Dict[str, Any]
    ) -> None:
        self.heartbeats[(partition, slot)] = snapshot

    # ------------------------------------------------------------------
    # Aggregated views
    # ------------------------------------------------------------------
    def io_totals(self) -> Dict[str, int]:
        """Cluster rollup: the sum of every reply delta across slots —
        the distributed analogue of ``engine.metrics.snapshot()`` for
        coordinator-routed query work."""
        totals: Dict[str, int] = {}
        for agg in self.workers.values():
            for field, value in agg["io"].items():
                totals[field] = totals.get(field, 0) + value
        return totals

    def cluster_heatmap(self):
        """Merge the latest per-worker heatmap grids heat-conservingly
        (element-wise sums over identical bucket boundaries); ``None``
        until a heartbeat has delivered a grid.

        Replicas of the same partition scan the same rows, so only the
        lowest heartbeat-reporting slot of each partition contributes —
        counting every replica would inflate partition heat by the
        replication factor.
        """
        from repro.obs.heatmap import KeySpaceHeatmap

        chosen: Dict[int, Dict[str, Any]] = {}
        for (partition, slot), beat in sorted(self.heartbeats.items()):
            if beat.get("heatmap") is None:
                continue
            if partition not in chosen:
                chosen[partition] = beat["heatmap"]
        merged = None
        for grid in chosen.values():
            restored = KeySpaceHeatmap.from_json(grid)
            if merged is None:
                merged = restored
            else:
                merged.merge_from(restored)
        return merged

    def worker_slow_queries(self) -> List[Dict[str, Any]]:
        """Every worker slow-log entry seen in the latest heartbeats,
        tagged with its partition/replica."""
        out: List[Dict[str, Any]] = []
        for (partition, slot), beat in sorted(self.heartbeats.items()):
            for entry in beat.get("slow_queries", ()):
                tagged = dict(entry)
                tagged["partition"] = partition
                tagged["replica"] = slot
                out.append(tagged)
        return out

    def error_budget(self) -> Dict[str, Any]:
        total = self.slo_good + self.slo_bad
        bad_rate = (self.slo_bad / total) if total else 0.0
        allowed = 1.0 - self.slo_target
        return {
            "objective_seconds": self.slo_objective_seconds,
            "target": self.slo_target,
            "good_events": self.slo_good,
            "bad_events": self.slo_bad,
            "bad_rate": bad_rate,
            "burn_rate": (bad_rate / allowed) if allowed > 0 else 0.0,
        }

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-friendly aggregate for ``cluster.stats()``."""
        heatmap = self.cluster_heatmap()
        workers = []
        for (partition, slot), agg in sorted(self.workers.items()):
            beat = self.heartbeats.get((partition, slot))
            workers.append(
                {
                    "partition": partition,
                    "replica": slot,
                    "queries": agg["queries"],
                    "io": dict(agg["io"]),
                    "heartbeat": (
                        {
                            "pid": beat.get("pid"),
                            "trajectories": beat.get("trajectories"),
                            "io": beat.get("io"),
                            "slow_queries": len(
                                beat.get("slow_queries") or ()
                            ),
                        }
                        if beat is not None
                        else None
                    ),
                }
            )
        # Heartbeat-only slots (no query routed there yet) still show.
        for (partition, slot), beat in sorted(self.heartbeats.items()):
            if (partition, slot) not in self.workers:
                workers.append(
                    {
                        "partition": partition,
                        "replica": slot,
                        "queries": 0,
                        "io": {},
                        "heartbeat": {
                            "pid": beat.get("pid"),
                            "trajectories": beat.get("trajectories"),
                            "io": beat.get("io"),
                            "slow_queries": len(
                                beat.get("slow_queries") or ()
                            ),
                        },
                    }
                )
        workers.sort(key=lambda w: (w["partition"], w["replica"]))
        return {
            "slo": {
                "summaries": {
                    key: hist.summary()
                    for key, hist in sorted(self.histograms.items())
                },
                "histograms": {
                    key: hist.to_json()
                    for key, hist in sorted(self.histograms.items())
                },
                "error_budget": self.error_budget(),
            },
            "workers": workers,
            "cluster_io": self.io_totals(),
            "partition_service": {
                str(p): {
                    "seconds": s,
                    "replies": int(n),
                    "mean_seconds": (s / n) if n else 0.0,
                }
                for p, (s, n) in sorted(self.partition_service.items())
            },
            "slow_queries": self.worker_slow_queries(),
            "heatmap": (
                {
                    "total_heat": heatmap.total_heat,
                    "total_rows": heatmap.total_rows,
                    "buckets": len(heatmap.heat),
                }
                if heatmap is not None
                else None
            ),
        }
