"""Shard worker: one process owning one partition's salt slice.

A worker is a full single-process TraSS engine restricted to the
trajectories whose salted row keys fall in its partition.  The salt is
the *first byte* of every row key and is a pure function of the
trajectory id (:func:`~repro.kvstore.rowkey.shard_of`), so partitioning
by ``salt % partitions`` on the coordinator and rebuilding each slice
in its worker reproduces exactly the key placement the single-process
store would have — scans over the owned salts read exactly the rows the
single-process scan would have read from those salts.

The worker loop is strictly FIFO over its pipe: requests are answered
in arrival order, which is what lets the coordinator pipeline a whole
workload per connection and match replies positionally by id.

Replicas of the same partition are built from the same spec, hence
byte-identical stores: failing over re-asks an identical store, which
is the exactness half of the failover argument (DESIGN.md §12).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.engine import TraSS
from repro.core.config import TraSSConfig
from repro.core.local_filter import LocalFilter
from repro.core.threshold import make_row_filter
from repro.geometry.trajectory import Trajectory
from repro.index.ranges import IndexRange
from repro.kvstore.faults import FaultInjector, FaultSchedule, SimulatedCrash
from repro.serve.protocol import (
    KIND_CRASH,
    KIND_PING,
    KIND_SHUTDOWN,
    KIND_STALL,
    KIND_STATS,
    KIND_THRESHOLD,
    KIND_TOPK,
    Reply,
    Request,
    ThresholdPartial,
    TopKPartial,
    TraceContext,
    encode_error,
)


@dataclass
class WorkerSpec:
    """Everything a worker process needs to rebuild its store slice.

    Carried across the process boundary by pickle, so it holds only
    plain data: the engine config, the raw ``(tid, points)`` pairs of
    the partition, and the salts the partition owns.
    """

    partition: int
    replica: int
    config: TraSSConfig
    key_encoding: str
    trajectories: List[Tuple[str, tuple]]
    owned_salts: Tuple[int, ...]
    #: optional deterministic fault schedule installed on the worker's
    #: own table — `crash_sites` kill the *worker process* (the
    #: in-process SimulatedCrash becomes an os._exit), which is how
    #: chaos drills kill shards deterministically mid-workload
    fault_schedule: Optional[FaultSchedule] = field(default=None)
    #: when set, the worker loads its slice from this saved store
    #: directory instead of rebuilding from ``trajectories``.  All
    #: replicas of a partition point at the *same* compact-segment
    #: files, which they then map read-only — the kernel page cache
    #: holds one copy of every block no matter how many replicas serve
    #: it (the shared-memory serving mode).
    store_dir: Optional[str] = field(default=None)


def build_worker_engine(spec: WorkerSpec) -> TraSS:
    """Materialise the partition's engine from its spec."""
    if spec.store_dir is not None:
        engine = TraSS.load(spec.store_dir)
    else:
        engine = TraSS(spec.config, spec.key_encoding)
        engine.add_all(
            Trajectory(tid, points) for tid, points in spec.trajectories
        )
    if spec.fault_schedule is not None:
        engine.install_fault_injector(FaultInjector(spec.fault_schedule))
    return engine


def threshold_partial(
    engine: TraSS,
    owned_salts: Sequence[int],
    query: Trajectory,
    eps: float,
    measure,
    index_ranges: Optional[Sequence[Tuple[int, int]]],
) -> ThresholdPartial:
    """This shard's share of Algorithm 3.

    The coordinator already ran global pruning, so the worker gets the
    planned index-value ranges and only maps them to row-key ranges
    over its *owned* salts — the per-shard half of the single-process
    scan plan.  Everything downstream (local filter, resilient scan,
    pipelined refine) is the same code path as
    :func:`repro.core.threshold.threshold_search`, so a merged set of
    partials is field-for-field the single-process result.

    ``index_ranges is None`` means the measure cannot be index-pruned:
    fall back to a full scan of the worker's slice, mirroring
    ``TraSS._full_scan_threshold`` over this partition's trajectories.
    """
    store = engine.store
    if index_ranges is None:
        before = store.metrics.snapshot()
        result = engine._full_scan_threshold(query, eps, measure)
        return ThresholdPartial(
            answers=result.answers,
            candidates=result.candidates,
            retrieved_rows=result.retrieved_rows,
            pruning_seconds=0.0,
            scan_seconds=result.scan_seconds,
            refine_seconds=result.refine_seconds,
            io_delta=store.metrics.diff(before),
        )

    started = time.perf_counter()
    ranges = [IndexRange(start, stop) for start, stop in index_ranges]
    scan_ranges = store.scan_ranges_for(ranges, shards=owned_salts)
    pruning_seconds = time.perf_counter() - started

    local = LocalFilter(
        query,
        measure,
        eps,
        store.config.dp_tolerance,
        box_mode=store.config.box_mode,
    )
    row_filter = make_row_filter(store, local)

    answers = {}
    refine_clock = [0.0]
    query_points = query.points

    def refine(chunk, used_filter) -> None:
        refine_started = time.perf_counter()
        accepted = used_filter.accepted
        for key, _ in chunk:
            record = accepted[key]
            dist = measure.distance_within(query_points, record.points, eps)
            if dist is not None:
                answers[record.tid] = dist
        refine_clock[0] += time.perf_counter() - refine_started

    before = store.metrics.snapshot()
    scan_started = time.perf_counter()
    rows, scan_report = store.executor.scan_ranges(
        scan_ranges, row_filter, on_range_rows=refine
    )
    elapsed = time.perf_counter() - scan_started
    io_delta = store.metrics.diff(before)
    refine_seconds = min(refine_clock[0], elapsed)

    return ThresholdPartial(
        answers=answers,
        candidates=len(rows),
        retrieved_rows=io_delta["rows_scanned"],
        pruning_seconds=pruning_seconds,
        scan_seconds=elapsed - refine_seconds,
        refine_seconds=refine_seconds,
        resilience=scan_report,
        filter_stats=local.stats,
        io_delta=io_delta,
    )


def topk_partial(engine: TraSS, query: Trajectory, k: int, measure_name):
    """This shard's local top-k (Algorithm 4 over the worker's slice).

    Top-k plans adaptively, so there is no coordinator plan to share;
    each worker runs the full best-first search on its own store and
    the coordinator keeps the global k smallest.
    """
    before = engine.metrics.snapshot()
    result = engine.topk_search(query, k, measure=measure_name)
    return TopKPartial(
        answers=result.answers,
        candidates=result.candidates,
        retrieved_rows=result.retrieved_rows,
        units_scanned=result.units_scanned,
        elements_expanded=result.elements_expanded,
        total_seconds=result.total_seconds,
        resilience=result.resilience,
        filter_stats=result.filter_stats,
        io_delta=engine.metrics.diff(before),
    )


def worker_stats(engine: TraSS, spec: WorkerSpec) -> dict:
    """The worker's observability snapshot — the heartbeat payload.

    Carries the cumulative ``IOMetrics`` totals, the refreshed metrics
    registry, the worker's heatmap grid (heat merges conservingly on
    the coordinator) and its slow-query log.  Everything is plain JSON
    data: the coordinator aggregates without importing worker state.
    """
    from repro.obs.registry import update_registry_from_engine

    update_registry_from_engine(engine.registry, engine)
    telemetry = engine.storage_telemetry
    heatmap = telemetry.heatmap if telemetry is not None else None
    return {
        "partition": spec.partition,
        "replica": spec.replica,
        "pid": os.getpid(),
        "trajectories": len(engine),
        "io": engine.metrics.snapshot(),
        "registry": engine.registry.to_json(),
        "heatmap": heatmap.to_json() if heatmap is not None else None,
        "slow_queries": engine.slow_query_log.to_json(),
    }


def _handle(engine: TraSS, spec: WorkerSpec, request: Request):
    payload = request.payload
    if request.kind == KIND_PING:
        return {
            "partition": spec.partition,
            "replica": spec.replica,
            "trajectories": len(engine),
            "pid": os.getpid(),
        }
    if request.kind == KIND_STATS:
        return worker_stats(engine, spec)
    query = Trajectory(payload["tid"], payload["points"])
    measure = engine._resolve_measure(payload.get("measure"))
    if request.kind == KIND_THRESHOLD:
        return threshold_partial(
            engine,
            spec.owned_salts,
            query,
            payload["eps"],
            measure,
            payload.get("ranges"),
        )
    if request.kind == KIND_TOPK:
        return topk_partial(engine, query, payload["k"], measure.name)
    raise ValueError(f"unknown request kind {request.kind!r}")


def worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: build the slice, then serve FIFO forever.

    Exits when the pipe closes (coordinator gone), on an explicit
    shutdown, or — via ``os._exit`` — on a crash directive or an
    injected :class:`SimulatedCrash`, which must look exactly like
    ``kill -9`` to the coordinator (no reply, dead pipe).
    """
    engine = build_worker_engine(spec)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        if request.kind == KIND_SHUTDOWN:
            conn.close()
            return
        if request.kind == KIND_CRASH:
            os._exit(1)
        if request.kind == KIND_STALL:
            time.sleep(float(request.payload.get("seconds", 0.0)))
            try:
                conn.send(Reply(request.id, True, payload="stalled"))
            except (BrokenPipeError, OSError):
                return
            continue
        try:
            trace = getattr(request, "trace", None)
            if trace is not None:
                reply = _handle_traced(engine, spec, request, trace)
            else:
                result = _handle(engine, spec, request)
                reply = Reply(request.id, True, payload=result)
        except SimulatedCrash:
            os._exit(1)
        except Exception as exc:  # typed error crosses the wire
            reply = Reply(request.id, False, error=encode_error(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def _handle_traced(
    engine: TraSS, spec: WorkerSpec, request: Request, trace: TraceContext
) -> Reply:
    """Run one request under a recording tracer and ship the subtree.

    The tracer rides the engine's ``trace_clock`` — wall time plus
    virtual charges normally, purely virtual under fault injection —
    so shipped durations are deterministic in chaos drills.  Tracing is
    observational: the handler result is byte-identical to an untraced
    run, only the reply gains the ``spans`` envelope.
    """
    tracer = engine.make_tracer()
    with engine.traced(tracer):
        with tracer.span(
            "worker.handle",
            trace_id=trace.trace_id,
            kind=request.kind,
            partition=spec.partition,
            replica=spec.replica,
            pid=os.getpid(),
        ) as root:
            result = _handle(engine, spec, request)
    return Reply(
        request.id,
        True,
        payload=result,
        spans=root.to_dict(include_events=trace.include_events),
    )
