"""The distributed serving tier: shard workers behind a coordinator.

``ServingCluster`` shards a TraSS dataset by row-key salt across N
worker processes (with optional replicas), scatter-gathers threshold
and top-k queries, and returns answers bit-identical to the
single-process engine — with replica failover, hedged requests,
degraded-mode accounting and an admission-control front door.
See DESIGN.md §12 for the topology and the exactness argument.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.coordinator import ServingCluster
from repro.serve.obs import ClusterObservability
from repro.serve.protocol import (
    Reply,
    Request,
    ThresholdPartial,
    TopKPartial,
    TraceContext,
)
from repro.serve.supervisor import ReplicaHandle, ShardSupervisor
from repro.serve.worker import WorkerSpec, worker_main

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ClusterObservability",
    "ServingCluster",
    "Request",
    "Reply",
    "ThresholdPartial",
    "TopKPartial",
    "TraceContext",
    "ReplicaHandle",
    "ShardSupervisor",
    "WorkerSpec",
    "worker_main",
]
