"""The scatter-gather coordinator of the serving tier.

``ServingCluster`` promotes the single-process engine to N shard
worker processes behind one front door:

* **partitioning** — trajectory ``tid`` hashes to a salt (the first
  byte of its row key); partition ``p`` owns the salts
  ``{s : s % partitions == p}``.  Each worker rebuilds exactly its
  partition's slice, so per-shard scans read exactly the rows the
  single-process scan would read from those salts and per-shard answer
  sets are disjoint — the coordinator merge is a plain union
  (threshold) or a k-smallest merge (top-k).
* **planning** — global pruning is a pure function of the query, the
  threshold and the index geometry (never of the stored rows), so the
  coordinator plans once on an *empty* engine and ships only the
  index-value ranges; workers map them onto their owned salts.
* **robustness** — per-partition replicas with automatic failover on
  worker crash, pipe EOF, transient worker errors, or timeout; hedged
  requests to straggler shards (opt-in ``hedge_delay_seconds``);
  circuit breakers per ``(partition, replica)`` slot reusing the PR 1
  breaker; bounded attempts; and when a partition is truly
  unreachable, degraded-mode accounting that reports the *exact*
  skipped key ranges in the same shape as the ``ResilientExecutor``
  contract — or, without ``degraded_mode``, a typed
  :class:`~repro.exceptions.DegradedResult` carrying the partial
  answer.
* **admission control** — an :class:`AdmissionController` front door
  (per-tenant token buckets + queue-depth shedding) raising typed
  :class:`~repro.exceptions.OverloadedError` rejections.
"""

from __future__ import annotations

import time
from collections import deque
from multiprocessing.connection import wait as _mp_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import TraSS
from repro.core.executor import CircuitBreaker, ScanReport
from repro.core.local_filter import LocalFilterStats
from repro.core.pruning import PruningResult
from repro.core.threshold import ThresholdSearchResult
from repro.core.topk import TopKSearchResult
from repro.exceptions import (
    ClusterError,
    DegradedResult,
    QueryError,
    ShardUnavailableError,
)
from repro.geometry.trajectory import Trajectory
from repro.index.ranges import IndexRange
from repro.kvstore.rowkey import shard_of
from repro.kvstore.table import ScanRange
from repro.obs.tracing import NULL_TRACER, graft_span_dict
from repro.serve.admission import AdmissionController
from repro.serve.obs import ClusterObservability
from repro.serve.protocol import (
    KIND_CRASH,
    KIND_PING,
    KIND_STALL,
    KIND_STATS,
    KIND_THRESHOLD,
    KIND_TOPK,
    Request,
    TraceContext,
    decode_error,
    error_is_transient,
)
from repro.serve.supervisor import ReplicaHandle, ShardSupervisor
from repro.serve.worker import WorkerSpec


class _Flight:
    """One partition's in-flight request during a single-query scatter."""

    __slots__ = (
        "partition",
        "request",
        "tried",
        "active",
        "attempts",
        "attempt_started",
        "hedged",
        "hedge_handle",
        "done",
        "exhausted",
        "result",
        "error",
        "spans",
        "winner_slot",
        "service_seconds",
    )

    def __init__(self, partition: int, request: Request):
        self.partition = partition
        self.request = request
        self.tried: set = set()
        #: replica handle -> replica slot index, for every outstanding copy
        self.active: Dict[ReplicaHandle, int] = {}
        self.attempts = 0
        self.attempt_started = 0.0
        self.hedged = False
        self.hedge_handle: Optional[ReplicaHandle] = None
        self.done = False
        self.exhausted = False
        self.result = None
        self.error = None
        #: worker span subtree shipped on the winning reply (traced runs)
        self.spans = None
        #: replica slot that produced the winning reply
        self.winner_slot: Optional[int] = None
        #: launch-to-reply wall seconds of the winning attempt
        self.service_seconds: Optional[float] = None


class _PartitionBatch:
    """One partition's pipelined FIFO stream during a batch scatter."""

    __slots__ = (
        "partition",
        "requests",
        "queue",
        "inflight",
        "results",
        "handle",
        "slot",
        "tried",
        "attempts",
        "exhausted",
        "last_activity",
    )

    def __init__(self, partition: int, requests: List[Request]):
        self.partition = partition
        self.requests = requests
        self.queue = deque(requests)
        self.inflight: deque = deque()
        self.results: Dict[int, object] = {}
        self.handle: Optional[ReplicaHandle] = None
        self.slot: Optional[int] = None
        self.tried: set = set()
        self.attempts = 0
        self.exhausted = False
        self.last_activity = 0.0

    @property
    def finished(self) -> bool:
        return self.exhausted or len(self.results) == len(self.requests)


class ServingCluster:
    """Distributed TraSS serving: shard workers behind a coordinator.

    Usable as a context manager; :meth:`start` spawns the workers and
    blocks until every replica has built its slice and answered a ping.
    Answers are bit-identical to the single-process engine (threshold:
    disjoint-union of per-salt answer sets; top-k: k-smallest merge of
    per-shard top-k lists, identical in the absence of exact distance
    ties at the k-th boundary).
    """

    #: pipelined requests kept unanswered per worker pipe — bounds pipe
    #: buffer usage so sends never block behind a slow consumer
    BATCH_WINDOW = 16

    def __init__(
        self,
        config,
        key_encoding: str,
        trajectories: Sequence[Tuple[str, tuple]],
        partitions: int = 2,
        replication: int = 1,
        request_timeout: float = 30.0,
        startup_timeout: float = 120.0,
        hedge_delay_seconds: Optional[float] = None,
        max_attempts: Optional[int] = None,
        degraded_mode: bool = False,
        admission: Optional[AdmissionController] = None,
        fault_schedules: Optional[Dict[int, object]] = None,
        max_restarts: int = 3,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 5.0,
        tracer=None,
        segment_dir: Optional[str] = None,
        observability: bool = False,
        slo_objective_seconds: float = 0.5,
        slo_target: float = 0.99,
    ):
        if partitions < 1:
            raise ClusterError(f"partitions must be >= 1, got {partitions}")
        if partitions > config.shards:
            raise ClusterError(
                f"partitions ({partitions}) cannot exceed config.shards "
                f"({config.shards}): a partition must own at least one salt"
            )
        if replication < 1:
            raise ClusterError(f"replication must be >= 1, got {replication}")
        if request_timeout <= 0:
            raise ClusterError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        if hedge_delay_seconds is not None and hedge_delay_seconds < 0:
            raise ClusterError(
                f"hedge_delay_seconds must be >= 0, got {hedge_delay_seconds}"
            )
        self.config = config
        self.key_encoding = key_encoding
        self.partitions = partitions
        self.replication = replication
        self.request_timeout = request_timeout
        self.startup_timeout = startup_timeout
        self.hedge_delay_seconds = hedge_delay_seconds
        self.max_attempts = (
            max_attempts if max_attempts is not None else replication + 1
        )
        self.degraded_mode = degraded_mode
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Cluster-wide aggregation (SLO histograms, per-worker IO
        # accumulation, heartbeats) only exists when asked for — the
        # zero-cost-when-off contract leaves every hot-path guard a
        # single `is not None` check.
        self.obs: Optional[ClusterObservability] = (
            ClusterObservability(
                slo_objective_seconds=slo_objective_seconds,
                slo_target=slo_target,
            )
            if observability
            else None
        )
        #: per-partition attribution of the most recent single-query
        #: scatter (partition/replica/attempts/hedged/reached), consumed
        #: by the engine's slow-query log for cluster entries
        self.last_fanout: Optional[List[Dict[str, object]]] = None
        self.supervisor = ShardSupervisor(max_restarts=max_restarts)
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_failure_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        # Planning is independent of stored data, so an empty engine
        # supplies the pruner, the range -> row-key mapping (for exact
        # skipped-range accounting) and measure resolution.
        self._plan_engine = TraSS(config, key_encoding)
        self._next_request_id = 0
        self._started = False
        self.counters: Dict[str, int] = {
            "requests": 0,
            "threshold_queries": 0,
            "topk_queries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "failovers": 0,
            "degraded_queries": 0,
            "stale_replies": 0,
            "breaker_short_circuits": 0,
            "worker_errors": 0,
        }

        # Partition the dataset by the salt byte of each row key.
        slices: List[List[Tuple[str, tuple]]] = [
            [] for _ in range(partitions)
        ]
        for tid, points in trajectories:
            slices[self._partition_of(tid)].append((tid, points))
        # Shared-memory serving: materialise each partition's slice
        # once as a compact-segment store on disk; every replica of the
        # partition then opens the *same* files read-only via mmap, so
        # the page cache holds one copy of the data regardless of the
        # replication factor (instead of R private in-heap copies).
        store_dirs: List[Optional[str]] = [None] * partitions
        if segment_dir is not None:
            import os

            for p in range(partitions):
                slice_engine = TraSS(config, key_encoding)
                slice_engine.add_all(
                    Trajectory(tid, points) for tid, points in slices[p]
                )
                path = os.path.join(segment_dir, f"partition-{p:03d}")
                slice_engine.save(path, compact=True)
                store_dirs[p] = path
        fault_schedules = fault_schedules or {}
        self._specs: List[List[WorkerSpec]] = []
        for p in range(partitions):
            replica_specs = []
            for r in range(replication):
                replica_specs.append(
                    WorkerSpec(
                        partition=p,
                        replica=r,
                        config=config,
                        key_encoding=key_encoding,
                        trajectories=[] if store_dirs[p] else slices[p],
                        owned_salts=self.owned_salts(p),
                        fault_schedule=fault_schedules.get(p),
                        store_dir=store_dirs[p],
                    )
                )
            self._specs.append(replica_specs)
        self._replicas: List[List[ReplicaHandle]] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, engine: TraSS, **kwargs) -> "ServingCluster":
        """Shard an existing single-process engine's dataset."""
        trajectories = [
            (record.tid, tuple(record.points))
            for record in engine.store.all_records()
        ]
        return cls(
            engine.config, engine.store.key_encoding, trajectories, **kwargs
        )

    @classmethod
    def from_trajectories(
        cls, trajectories, config, key_encoding="integer", **kwargs
    ) -> "ServingCluster":
        data = [(t.tid, tuple(t.points)) for t in trajectories]
        return cls(config, key_encoding, data, **kwargs)

    def _partition_of(self, tid: str) -> int:
        return shard_of(tid, self.config.shards) % self.partitions

    def owned_salts(self, partition: int) -> Tuple[int, ...]:
        return tuple(
            s
            for s in range(self.config.shards)
            if s % self.partitions == partition
        )

    @property
    def pruner(self):
        return self._plan_engine.pruner

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingCluster":
        """Spawn every replica and wait for all of them to come up."""
        if self._started:
            return self
        self._replicas = [
            [self.supervisor.spawn(spec) for spec in replica_specs]
            for replica_specs in self._specs
        ]
        deadline = time.monotonic() + self.startup_timeout
        pings = []
        for handles in self._replicas:
            for handle in handles:
                request = Request(self._next_id(), KIND_PING)
                handle.conn.send(request)
                pings.append((handle, request.id))
        for handle, request_id in pings:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(remaining):
                self.stop()
                raise ClusterError(
                    f"worker p{handle.partition}r{handle.replica} did not "
                    f"come up within {self.startup_timeout}s"
                )
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError):
                self.stop()
                raise ClusterError(
                    f"worker p{handle.partition}r{handle.replica} died "
                    "during startup"
                )
            if reply.id != request_id or not reply.ok:
                self.stop()
                raise ClusterError(
                    f"worker p{handle.partition}r{handle.replica} failed "
                    f"its startup ping: {reply!r}"
                )
        self._started = True
        return self

    def stop(self) -> None:
        self.supervisor.stop_all()
        self._replicas = []
        self._started = False

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _next_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def _make_request(self, kind: str, payload: dict) -> Request:
        """A query request, trace-stamped when the coordinator traces.

        The trace context rides the request across the pipe; a worker
        that sees one records its handler under a real tracer and ships
        the span subtree back on the reply.  Untraced coordinators send
        ``trace=None`` and workers stay on their zero-cost noop path.
        """
        request = Request(self._next_id(), kind, payload)
        if self.tracer is not NULL_TRACER:
            request.trace = TraceContext(trace_id=f"q{request.id}")
        return request

    def _require_started(self) -> None:
        if not self._started:
            raise ClusterError("cluster is not started (call start())")

    # ------------------------------------------------------------------
    # Chaos / test hooks
    # ------------------------------------------------------------------
    def replica(self, partition: int, replica: int = 0) -> ReplicaHandle:
        return self._replicas[partition][replica]

    def kill_replica(self, partition: int, replica: int = 0) -> None:
        """SIGKILL a worker process (out-of-band chaos)."""
        self.replica(partition, replica).kill()

    def crash_replica_inband(
        self, partition: int, replica: int = 0
    ) -> None:
        """Queue a crash directive: the worker dies — exactly like a
        kill — when its FIFO reaches the directive, i.e. deterministic
        death *mid-workload* after everything queued before it."""
        handle = self.replica(partition, replica)
        handle.conn.send(Request(self._next_id(), KIND_CRASH))

    def stall_replica(
        self, partition: int, replica: int = 0, seconds: float = 1.0
    ) -> None:
        """Queue a straggler directive (the hedging drill)."""
        handle = self.replica(partition, replica)
        handle.conn.send(
            Request(self._next_id(), KIND_STALL, {"seconds": seconds})
        )

    # ------------------------------------------------------------------
    # Replica selection / failure accounting
    # ------------------------------------------------------------------
    def _eligible_replica(
        self, partition: int, tried: set
    ) -> Optional[Tuple[int, ReplicaHandle]]:
        """The first live, breaker-closed, untried replica of a
        partition; dead replicas are replaced through the supervisor
        (restart budget permitting) before being considered."""
        now = time.monotonic()
        handles = self._replicas[partition]
        for slot in range(len(handles)):
            handle = handles[slot]
            if handle in tried:
                continue
            if not handle.alive():
                replacement = self.supervisor.restart(handle)
                if replacement is None:
                    continue
                handles[slot] = replacement
                handle = replacement
            if self.breaker.is_open((partition, slot), now):
                self.counters["breaker_short_circuits"] += 1
                continue
            return slot, handle
        return None

    def _record_replica_failure(self, partition: int, slot: int) -> None:
        self.breaker.record_failure((partition, slot), time.monotonic())
        self.counters["failovers"] += 1

    # ------------------------------------------------------------------
    # Single-query scatter-gather (with hedging)
    # ------------------------------------------------------------------
    def _launch(self, flight: _Flight) -> None:
        while True:
            if flight.attempts >= self.max_attempts:
                flight.exhausted = True
                return
            pick = self._eligible_replica(flight.partition, flight.tried)
            if pick is None:
                flight.exhausted = True
                return
            slot, handle = pick
            flight.tried.add(handle)
            flight.attempts += 1
            try:
                handle.conn.send(flight.request)
            except (OSError, BrokenPipeError, ValueError):
                self._record_replica_failure(flight.partition, slot)
                continue
            flight.active[handle] = slot
            flight.attempt_started = time.monotonic()
            return

    def _hedge(self, flight: _Flight) -> None:
        flight.hedged = True
        if self.obs is not None:
            # How long the primary stalled before we gave up waiting —
            # the hedge-efficacy signal the doctor reads.
            self.obs.observe_slo(
                "hedge_wait", time.monotonic() - flight.attempt_started
            )
        if flight.attempts >= self.max_attempts:
            return
        pick = self._eligible_replica(flight.partition, flight.tried)
        if pick is None:
            return
        slot, handle = pick
        flight.tried.add(handle)
        flight.attempts += 1
        try:
            handle.conn.send(flight.request)
        except (OSError, BrokenPipeError, ValueError):
            self._record_replica_failure(flight.partition, slot)
            return
        flight.active[handle] = slot
        flight.hedge_handle = handle
        self.counters["hedges"] += 1

    def _drop_active(
        self, flight: _Flight, handle: ReplicaHandle, failed: bool
    ) -> None:
        slot = flight.active.pop(handle, None)
        if failed and slot is not None:
            self._record_replica_failure(flight.partition, slot)
        if not flight.active and not flight.done:
            self._launch(flight)

    def _scatter(self, kind: str, payload: dict) -> Dict[int, _Flight]:
        """Fan one request out to every partition and gather replies,
        handling hedges, failover, timeouts and dead workers."""
        self._require_started()
        flights = {
            p: _Flight(p, self._make_request(kind, payload))
            for p in range(self.partitions)
        }
        self.counters["requests"] += 1
        for flight in flights.values():
            self._launch(flight)

        while True:
            live = [
                f
                for f in flights.values()
                if not f.done and not f.exhausted
            ]
            if not live:
                break
            now = time.monotonic()
            next_deadline = min(
                f.attempt_started + self.request_timeout for f in live
            )
            if self.hedge_delay_seconds is not None:
                for f in live:
                    if not f.hedged:
                        next_deadline = min(
                            next_deadline,
                            f.attempt_started + self.hedge_delay_seconds,
                        )
            conn_map = {}
            for f in live:
                for handle in f.active:
                    conn_map[handle.conn] = (f, handle)
            ready = (
                _mp_wait(list(conn_map), max(0.0, next_deadline - now))
                if conn_map
                else []
            )
            for conn in ready:
                flight, handle = conn_map[conn]
                if flight.done or handle not in flight.active:
                    continue
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._drop_active(flight, handle, failed=True)
                    continue
                if reply.id != flight.request.id:
                    self.counters["stale_replies"] += 1
                    continue
                if reply.ok:
                    slot = flight.active[handle]
                    self.breaker.record_success((flight.partition, slot))
                    flight.result = reply.payload
                    flight.done = True
                    flight.spans = reply.spans
                    flight.winner_slot = slot
                    flight.service_seconds = (
                        time.monotonic() - flight.attempt_started
                    )
                    if self.obs is not None:
                        self.obs.absorb_reply(
                            flight.partition, slot, reply.payload
                        )
                        self.obs.observe_partition_service(
                            flight.partition, flight.service_seconds
                        )
                    # A losing hedge copy will answer later; its reply
                    # drains as stale on the next use of that pipe.
                    flight.active.clear()
                    if flight.hedged and handle is flight.hedge_handle:
                        self.counters["hedge_wins"] += 1
                elif error_is_transient(reply.error):
                    self.counters["worker_errors"] += 1
                    self._drop_active(flight, handle, failed=True)
                else:
                    self.counters["worker_errors"] += 1
                    flight.error = reply.error
                    flight.done = True
                    flight.active.clear()
            now = time.monotonic()
            for flight in flights.values():
                if flight.done or flight.exhausted or not flight.active:
                    continue
                if now - flight.attempt_started >= self.request_timeout:
                    for handle in list(flight.active):
                        self._drop_active(flight, handle, failed=True)
                elif (
                    self.hedge_delay_seconds is not None
                    and not flight.hedged
                    and now - flight.attempt_started
                    >= self.hedge_delay_seconds
                ):
                    self._hedge(flight)
        self.last_fanout = [
            {
                "partition": p,
                "replica": flight.winner_slot,
                "attempts": flight.attempts,
                "hedged": flight.hedged,
                "reached": flight.done,
            }
            for p, flight in sorted(flights.items())
        ]
        return flights

    # ------------------------------------------------------------------
    # Pipelined batch scatter (throughput path)
    # ------------------------------------------------------------------
    def _batch_fail(self, state: _PartitionBatch) -> None:
        if state.slot is not None:
            self._record_replica_failure(state.partition, state.slot)
        # Unanswered requests go back to the head of the queue in their
        # original order; the next replica re-executes them against an
        # identical store, so answers are unchanged.
        while state.inflight:
            state.queue.appendleft(state.inflight.pop())
        state.handle = None
        state.slot = None

    def _batch_pick(self, state: _PartitionBatch) -> None:
        if state.attempts >= self.max_attempts:
            state.exhausted = True
            return
        pick = self._eligible_replica(state.partition, state.tried)
        if pick is None:
            state.exhausted = True
            return
        state.slot, state.handle = pick[0], pick[1]
        state.tried.add(state.handle)
        state.attempts += 1
        state.last_activity = time.monotonic()

    def _batch_scatter(
        self, requests_by_partition: Dict[int, List[Request]]
    ) -> Dict[int, _PartitionBatch]:
        """Pump every partition's FIFO pipeline concurrently.

        At most :data:`BATCH_WINDOW` requests ride each pipe unanswered,
        so sends never block behind a busy worker while every worker
        always has a full window of queued work — the scaling path the
        serving bench measures.
        """
        self._require_started()
        states = {
            p: _PartitionBatch(p, requests)
            for p, requests in requests_by_partition.items()
        }
        while True:
            live = [s for s in states.values() if not s.finished]
            if not live:
                break
            for state in live:
                if state.handle is None:
                    self._batch_pick(state)
                    if state.exhausted:
                        continue
                while (
                    state.handle is not None
                    and len(state.inflight) < self.BATCH_WINDOW
                    and state.queue
                ):
                    request = state.queue[0]
                    try:
                        state.handle.conn.send(request)
                    except (OSError, BrokenPipeError, ValueError):
                        self._batch_fail(state)
                        break
                    state.queue.popleft()
                    state.inflight.append(request)
                    state.last_activity = time.monotonic()
            conn_map = {
                s.handle.conn: s
                for s in live
                if s.handle is not None and s.inflight
            }
            if not conn_map:
                continue
            now = time.monotonic()
            next_deadline = min(
                s.last_activity + self.request_timeout
                for s in conn_map.values()
            )
            ready = _mp_wait(list(conn_map), max(0.0, next_deadline - now))
            for conn in ready:
                state = conn_map[conn]
                if state.handle is None or state.handle.conn is not conn:
                    continue
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._batch_fail(state)
                    continue
                state.last_activity = time.monotonic()
                expected = {r.id for r in state.inflight}
                if reply.id not in expected:
                    self.counters["stale_replies"] += 1
                    continue
                skipped_over: List[Request] = []
                while state.inflight and state.inflight[0].id != reply.id:
                    # FIFO workers answer in order; a gap means replies
                    # were lost — requeue the skipped requests.
                    skipped_over.append(state.inflight.popleft())
                state.queue.extendleft(reversed(skipped_over))
                request = state.inflight.popleft()
                if reply.ok:
                    self.breaker.record_success(
                        (state.partition, state.slot)
                    )
                    state.results[request.id] = reply
                    if self.obs is not None:
                        self.obs.absorb_reply(
                            state.partition, state.slot, reply.payload
                        )
                elif error_is_transient(reply.error):
                    self.counters["worker_errors"] += 1
                    state.queue.appendleft(request)
                    self._batch_fail(state)
                else:
                    self.counters["worker_errors"] += 1
                    state.results[request.id] = reply
            now = time.monotonic()
            for state in live:
                if (
                    state.handle is not None
                    and state.inflight
                    and now - state.last_activity >= self.request_timeout
                ):
                    self._batch_fail(state)
        return states

    # ------------------------------------------------------------------
    # Planning / merging
    # ------------------------------------------------------------------
    def _empty_pruning(self) -> PruningResult:
        return PruningResult(
            values=[],
            ranges=[],
            min_resolution=0,
            max_resolution=self.config.max_resolution,
        )

    def _threshold_payload(self, query, eps: float, measure) -> Tuple[dict, PruningResult, Optional[List[Tuple[int, int]]], float]:
        started = time.perf_counter()
        if measure.supports_point_lower_bound:
            pruning = self.pruner.prune(query, eps)
            wire_ranges = [(r.start, r.stop) for r in pruning.ranges]
        else:
            pruning = self._empty_pruning()
            wire_ranges = None
        pruning_seconds = time.perf_counter() - started
        payload = {
            "tid": query.tid,
            "points": list(query.points),
            "eps": float(eps),
            "measure": measure.name,
            "ranges": wire_ranges,
        }
        return payload, pruning, wire_ranges, pruning_seconds

    def _skipped_spans(
        self,
        partition: int,
        wire_ranges: Optional[List[Tuple[int, int]]],
    ) -> List[ScanRange]:
        """Exactly the row-key ranges an unreachable partition would
        have scanned: the planned ranges mapped onto its owned salts,
        or — for plan-free paths (top-k, full-scan fallbacks) — the
        partition's whole salt spans."""
        if wire_ranges is not None:
            ranges = [IndexRange(s, t) for s, t in wire_ranges]
            return self._plan_engine.store.scan_ranges_for(
                ranges, shards=self.owned_salts(partition)
            )
        spans = []
        for salt in self.owned_salts(partition):
            stop = bytes([salt + 1]) if salt < 255 else None
            spans.append(ScanRange(bytes([salt]), stop))
        return spans

    def _merge_threshold(
        self,
        partials: Dict[int, object],
        unreachable: List[int],
        pruning: PruningResult,
        wire_ranges,
        pruning_seconds: float,
        wall_seconds: float,
    ) -> Tuple[ThresholdSearchResult, List[ScanRange]]:
        answers: Dict[str, float] = {}
        candidates = 0
        retrieved = 0
        report: Optional[ScanReport] = None
        filter_stats: Optional[LocalFilterStats] = None
        for partition in sorted(partials):
            part = partials[partition]
            answers.update(part.answers)
            candidates += part.candidates
            retrieved += part.retrieved_rows
            if part.resilience is not None:
                if report is None:
                    report = ScanReport()
                report.merge_from(part.resilience)
            if part.filter_stats is not None:
                if filter_stats is None:
                    filter_stats = LocalFilterStats()
                filter_stats.merge_from(part.filter_stats)
        skipped: List[ScanRange] = []
        for partition in unreachable:
            skipped.extend(self._skipped_spans(partition, wire_ranges))
        if skipped:
            if report is None:
                report = ScanReport()
            report.ranges_total += len(skipped)
            report.skipped_ranges.extend(skipped)
        result = ThresholdSearchResult(
            answers=answers,
            candidates=candidates,
            retrieved_rows=retrieved,
            pruning=pruning,
            pruning_seconds=pruning_seconds,
            scan_seconds=wall_seconds,
            refine_seconds=0.0,
            resilience=report,
            filter_stats=filter_stats,
        )
        return result, skipped

    def _merge_topk(
        self,
        partials: Dict[int, object],
        unreachable: List[int],
        k: int,
        wall_seconds: float,
    ) -> Tuple[TopKSearchResult, List[ScanRange]]:
        merged: List[Tuple[float, str]] = []
        candidates = 0
        retrieved = 0
        units = 0
        expanded = 0
        report: Optional[ScanReport] = None
        filter_stats: Optional[LocalFilterStats] = None
        for partition in sorted(partials):
            part = partials[partition]
            merged.extend(part.answers)
            candidates += part.candidates
            retrieved += part.retrieved_rows
            units += part.units_scanned
            expanded += part.elements_expanded
            if part.resilience is not None:
                if report is None:
                    report = ScanReport()
                report.merge_from(part.resilience)
            if part.filter_stats is not None:
                if filter_stats is None:
                    filter_stats = LocalFilterStats()
                filter_stats.merge_from(part.filter_stats)
        merged.sort()
        skipped: List[ScanRange] = []
        for partition in unreachable:
            skipped.extend(self._skipped_spans(partition, None))
        if skipped:
            if report is None:
                report = ScanReport()
            report.ranges_total += len(skipped)
            report.skipped_ranges.extend(skipped)
        result = TopKSearchResult(
            answers=merged[:k],
            candidates=candidates,
            retrieved_rows=retrieved,
            units_scanned=units,
            elements_expanded=expanded,
            total_seconds=wall_seconds,
            resilience=report,
            filter_stats=filter_stats,
        )
        return result, skipped

    def _finish(self, result, skipped: List[ScanRange], kind: str):
        if skipped:
            self.counters["degraded_queries"] += 1
            if not self.degraded_mode:
                raise DegradedResult(
                    f"{kind} query lost {len(skipped)} key range(s) to "
                    "unreachable partitions (enable degraded_mode to "
                    "accept partial answers)",
                    result=result,
                    skipped_ranges=skipped,
                )
        return result

    @staticmethod
    def _split_flights(
        flights: Dict[int, _Flight]
    ) -> Tuple[Dict[int, object], List[int]]:
        partials: Dict[int, object] = {}
        unreachable: List[int] = []
        for partition, flight in flights.items():
            if flight.error is not None:
                raise decode_error(flight.error)
            if flight.done and flight.result is not None:
                partials[partition] = flight.result
            else:
                unreachable.append(partition)
        return partials, unreachable

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------
    def threshold_search(
        self, query, eps: float, measure=None, tenant: str = "default"
    ) -> ThresholdSearchResult:
        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
        resolved = self._plan_engine._resolve_measure(measure)
        query_started = time.perf_counter()
        self.admission.admit(tenant)
        if self.obs is not None:
            self.obs.observe_slo(
                "admission_wait", time.perf_counter() - query_started
            )
        try:
            with self.tracer.span(
                "serve.query", kind="threshold", tid=query.tid, eps=eps
            ) as root:
                payload, pruning, wire_ranges, pruning_seconds = (
                    self._threshold_payload(query, eps, resolved)
                )
                started = time.perf_counter()
                flights = self._scatter(KIND_THRESHOLD, payload)
                wall = time.perf_counter() - started
                if self.obs is not None:
                    self.obs.observe_slo("fanout", wall)
                self._trace_flights(flights)
                partials, unreachable = self._split_flights(flights)
                merge_started = time.perf_counter()
                result, skipped = self._merge_threshold(
                    partials,
                    unreachable,
                    pruning,
                    wire_ranges,
                    pruning_seconds,
                    wall,
                )
                if self.obs is not None:
                    self.obs.observe_slo(
                        "merge", time.perf_counter() - merge_started
                    )
                root.set_attrs(
                    answers=len(result.answers),
                    partitions=self.partitions,
                    unreachable=len(unreachable),
                )
            self.counters["threshold_queries"] += 1
            if self.obs is not None:
                self.obs.observe_query(
                    time.perf_counter() - query_started, ok=not skipped
                )
            return self._finish(result, skipped, "threshold")
        finally:
            self.admission.release()

    def topk_search(
        self, query, k: int, measure=None, tenant: str = "default"
    ) -> TopKSearchResult:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        resolved = self._plan_engine._resolve_measure(measure)
        query_started = time.perf_counter()
        self.admission.admit(tenant)
        if self.obs is not None:
            self.obs.observe_slo(
                "admission_wait", time.perf_counter() - query_started
            )
        try:
            with self.tracer.span(
                "serve.query", kind="topk", tid=query.tid, k=k
            ) as root:
                payload = {
                    "tid": query.tid,
                    "points": list(query.points),
                    "k": int(k),
                    "measure": resolved.name,
                }
                started = time.perf_counter()
                flights = self._scatter(KIND_TOPK, payload)
                wall = time.perf_counter() - started
                if self.obs is not None:
                    self.obs.observe_slo("fanout", wall)
                self._trace_flights(flights)
                partials, unreachable = self._split_flights(flights)
                merge_started = time.perf_counter()
                result, skipped = self._merge_topk(
                    partials, unreachable, k, wall
                )
                if self.obs is not None:
                    self.obs.observe_slo(
                        "merge", time.perf_counter() - merge_started
                    )
                root.set_attrs(
                    answers=len(result.answers),
                    partitions=self.partitions,
                    unreachable=len(unreachable),
                )
            self.counters["topk_queries"] += 1
            if self.obs is not None:
                self.obs.observe_query(
                    time.perf_counter() - query_started, ok=not skipped
                )
            return self._finish(result, skipped, "topk")
        finally:
            self.admission.release()

    def _trace_flights(self, flights: Dict[int, _Flight]) -> None:
        """One ``serve.partition`` span per flight; a traced reply's
        worker subtree is grafted under it, stitching the coordinator
        and worker halves of the query into a single cross-process
        tree.  Grafted durations are the worker's own measurements —
        worker clocks never mix with the coordinator clock."""
        if self.tracer is NULL_TRACER:
            return
        for partition, flight in sorted(flights.items()):
            with self.tracer.span(
                "serve.partition", partition=partition
            ) as span:
                span.set_attrs(
                    attempts=flight.attempts,
                    hedged=flight.hedged,
                    reached=flight.done,
                    replica=flight.winner_slot,
                )
            if flight.spans is not None:
                graft_span_dict(self.tracer, flight.spans, span)

    def _trace_batch(self, states: Dict[int, _PartitionBatch]) -> None:
        """The batch analogue of :meth:`_trace_flights`: one
        ``serve.partition`` span per pipelined stream, with every
        traced reply's worker subtree grafted under it in request
        (FIFO) order."""
        if self.tracer is NULL_TRACER:
            return
        for partition, state in sorted(states.items()):
            with self.tracer.span(
                "serve.partition", partition=partition
            ) as span:
                span.set_attrs(
                    attempts=state.attempts,
                    reached=not state.exhausted,
                    replica=state.slot,
                    requests=len(state.requests),
                )
            for request in state.requests:
                reply = state.results.get(request.id)
                if reply is not None and reply.spans is not None:
                    graft_span_dict(self.tracer, reply.spans, span)

    def threshold_search_many(
        self, queries, eps, measure=None, tenant: str = "default"
    ) -> List[ThresholdSearchResult]:
        """Answer many threshold queries over pipelined worker FIFOs.

        Results align positionally with ``queries`` and match
        per-query :meth:`threshold_search` answers exactly; admission
        charges the batch as one request.
        """
        queries = list(queries)
        try:
            eps_list = [float(e) for e in eps]
        except TypeError:
            eps_list = [float(eps)] * len(queries)
        if len(eps_list) != len(queries):
            raise QueryError(
                f"got {len(queries)} queries but {len(eps_list)} thresholds"
            )
        for e in eps_list:
            if e < 0:
                raise QueryError(f"threshold must be non-negative, got {e}")
        if not queries:
            return []
        resolved = self._plan_engine._resolve_measure(measure)
        self.admission.admit(tenant)
        try:
            plans = []
            payloads = []
            for query, e in zip(queries, eps_list):
                payload, pruning, wire_ranges, pruning_seconds = (
                    self._threshold_payload(query, e, resolved)
                )
                plans.append((pruning, wire_ranges, pruning_seconds))
                payloads.append(payload)
            requests_by_partition = {
                p: [
                    self._make_request(KIND_THRESHOLD, payload)
                    for payload in payloads
                ]
                for p in range(self.partitions)
            }
            self.counters["requests"] += 1
            with self.tracer.span(
                "serve.query_batch", kind="threshold", queries=len(queries)
            ):
                started = time.perf_counter()
                states = self._batch_scatter(requests_by_partition)
                wall = time.perf_counter() - started
                self._trace_batch(states)
            if self.obs is not None:
                self.obs.observe_slo("fanout", wall)
            results = []
            for i in range(len(queries)):
                partials: Dict[int, object] = {}
                unreachable: List[int] = []
                for p, state in states.items():
                    reply = state.results.get(state.requests[i].id)
                    if reply is None:
                        unreachable.append(p)
                    elif reply.ok:
                        partials[p] = reply.payload
                    else:
                        raise decode_error(reply.error)
                pruning, wire_ranges, pruning_seconds = plans[i]
                result, skipped = self._merge_threshold(
                    partials,
                    unreachable,
                    pruning,
                    wire_ranges,
                    pruning_seconds,
                    wall / len(queries),
                )
                self.counters["threshold_queries"] += 1
                if self.obs is not None:
                    self.obs.observe_query(
                        wall / len(queries), ok=not skipped
                    )
                results.append(self._finish(result, skipped, "threshold"))
            return results
        finally:
            self.admission.release()

    def topk_search_many(
        self, queries, k: int, measure=None, tenant: str = "default"
    ) -> List[TopKSearchResult]:
        """Batch top-k over the same pipelined FIFO transport."""
        queries = list(queries)
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not queries:
            return []
        resolved = self._plan_engine._resolve_measure(measure)
        self.admission.admit(tenant)
        try:
            payloads = [
                {
                    "tid": query.tid,
                    "points": list(query.points),
                    "k": int(k),
                    "measure": resolved.name,
                }
                for query in queries
            ]
            requests_by_partition = {
                p: [
                    self._make_request(KIND_TOPK, payload)
                    for payload in payloads
                ]
                for p in range(self.partitions)
            }
            self.counters["requests"] += 1
            with self.tracer.span(
                "serve.query_batch", kind="topk", queries=len(queries)
            ):
                started = time.perf_counter()
                states = self._batch_scatter(requests_by_partition)
                wall = time.perf_counter() - started
                self._trace_batch(states)
            if self.obs is not None:
                self.obs.observe_slo("fanout", wall)
            results = []
            for i in range(len(queries)):
                partials: Dict[int, object] = {}
                unreachable: List[int] = []
                for p, state in states.items():
                    reply = state.results.get(state.requests[i].id)
                    if reply is None:
                        unreachable.append(p)
                    elif reply.ok:
                        partials[p] = reply.payload
                    else:
                        raise decode_error(reply.error)
                result, skipped = self._merge_topk(
                    partials, unreachable, k, wall / len(queries)
                )
                self.counters["topk_queries"] += 1
                if self.obs is not None:
                    self.obs.observe_query(
                        wall / len(queries), ok=not skipped
                    )
                results.append(self._finish(result, skipped, "topk"))
            return results
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def heartbeat(self, timeout: float = 10.0) -> int:
        """Poll every live replica for its observability snapshot
        (cumulative ``IOMetrics``, metrics registry, heatmap grid,
        slow-query log) and fold the latest into the cluster aggregate.
        Returns how many workers answered; a no-op (0) when the cluster
        was built without ``observability``.

        Heartbeats ride the same FIFO pipes as queries, so polling an
        idle cluster is safe; dead or unreachable workers are skipped
        rather than restarted (the query path owns failover).
        """
        if self.obs is None:
            return 0
        self._require_started()
        polled = 0
        for partition, handles in enumerate(self._replicas):
            for slot, handle in enumerate(handles):
                if not handle.alive():
                    continue
                request = Request(self._next_id(), KIND_STATS)
                try:
                    handle.conn.send(request)
                except (OSError, BrokenPipeError, ValueError):
                    continue
                deadline = time.monotonic() + timeout
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not handle.conn.poll(remaining):
                        break
                    try:
                        reply = handle.conn.recv()
                    except (EOFError, OSError):
                        break
                    if reply.id != request.id:
                        # A losing hedge copy's late answer draining out.
                        self.counters["stale_replies"] += 1
                        continue
                    if reply.ok:
                        self.obs.absorb_heartbeat(
                            partition, slot, reply.payload
                        )
                        polled += 1
                    break
        return polled

    def io_totals(self) -> Dict[str, int]:
        """Cluster-wide ``IOMetrics`` rollup (sum of every successful
        reply's counter delta); empty without ``observability``."""
        return self.obs.io_totals() if self.obs is not None else {}

    def cluster_heatmap(self):
        """The heat-conserving merge of the latest per-worker heatmap
        grids; ``None`` without ``observability`` or before the first
        heartbeat delivers a grid."""
        if self.obs is None:
            return None
        return self.obs.cluster_heatmap()

    def doctor(self):
        """Cluster-scoped advisor: evidence-cited recommendations from
        the aggregated serving metrics."""
        from repro.obs.advisor import diagnose_cluster

        return diagnose_cluster(self)

    def stats(self) -> Dict[str, object]:
        base: Dict[str, object] = {
            "partitions": self.partitions,
            "replication": self.replication,
            "started": self._started,
            "counters": dict(self.counters),
            "worker_restarts": self.supervisor.total_restarts,
            "breaker": self.breaker.snapshot(),
            "admission": self.admission.snapshot(),
        }
        if self.obs is not None:
            if self._started:
                try:
                    self.heartbeat()
                except ClusterError:
                    pass
            base["observability"] = self.obs.snapshot()
        return base
