"""Wire protocol between the serving coordinator and shard workers.

One envelope each way: the coordinator sends :class:`Request` objects
down a ``multiprocessing`` pipe and the worker answers each with one
:class:`Reply` carrying the same ``id``.  Pipes already frame and
pickle messages, so the protocol stays declarative — dataclasses of
primitives plus the two accounting dataclasses
(:class:`~repro.core.executor.ScanReport`,
:class:`~repro.core.local_filter.LocalFilterStats`) that the
coordinator folds into its merged results.

Errors cross the boundary as ``(type name, message, transient)``
triples rather than pickled exceptions: the coordinator re-raises by
looking the name up in :mod:`repro.exceptions`, so failover policy
stays type-driven on both sides of the pipe without trusting arbitrary
pickled objects from a worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import exceptions as _exceptions
from repro.core.executor import ScanReport
from repro.core.local_filter import LocalFilterStats
from repro.exceptions import ClusterError, TransientError

PROTOCOL_VERSION = 2

#: query kinds
KIND_THRESHOLD = "threshold"
KIND_TOPK = "topk"
KIND_PING = "ping"
#: observability kind: the worker answers with a metrics/telemetry
#: snapshot (the coordinator's heartbeat poll)
KIND_STATS = "stats"
#: directive kinds (tests and chaos drills)
KIND_STALL = "stall"
KIND_CRASH = "crash"
KIND_SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class TraceContext:
    """Cross-process trace propagation: stamped on a :class:`Request`
    when the coordinator is tracing.

    ``trace_id`` identifies the query's scatter (the coordinator's
    request id); ``parent_span`` names the coordinator span the
    worker's subtree will be grafted under.  A worker that sees a trace
    context runs its handler under a recording tracer and ships the
    completed span subtree back on the :class:`Reply`; without one the
    worker's tracing stays at the zero-cost noop default.
    """

    trace_id: str
    parent_span: str = "serve.partition"
    #: ship per-record span events across the pipe (off by default —
    #: events can be plentiful and the envelope rides the hot path)
    include_events: bool = False


@dataclass
class Request:
    """One coordinator -> worker message."""

    id: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    #: non-None when the coordinator wants the worker's span subtree
    trace: Optional[TraceContext] = None


@dataclass
class Reply:
    """One worker -> coordinator message, matched to a request by id."""

    id: int
    ok: bool
    payload: Any = None
    #: ``(exception type name, message, transient?)`` when ``not ok``
    error: Optional[Tuple[str, str, bool]] = None
    #: the worker's completed span subtree (``Span.to_dict`` form) when
    #: the request carried a :class:`TraceContext`
    spans: Optional[Dict[str, Any]] = None


@dataclass
class ThresholdPartial:
    """One shard's contribution to a threshold query.

    Shards own disjoint salt slices, so ``answers`` dicts are disjoint
    across partials and the coordinator merge is a plain union.
    """

    answers: Dict[str, float]
    candidates: int
    retrieved_rows: int
    pruning_seconds: float
    scan_seconds: float
    refine_seconds: float
    resilience: Optional[ScanReport] = None
    filter_stats: Optional[LocalFilterStats] = None
    #: full IOMetrics counter delta for this request (field -> count),
    #: so coordinator-side accounting matches the single-process engine
    #: field-for-field instead of carrying only ``rows_scanned``
    io_delta: Optional[Dict[str, int]] = None


@dataclass
class TopKPartial:
    """One shard's local top-k over its own trajectories.

    Every stored trajectory lives in exactly one shard, so the global
    top-k is contained in the union of per-shard top-k lists; the
    coordinator keeps the k smallest by ``(distance, tid)``.
    """

    answers: List[Tuple[float, str]]
    candidates: int
    retrieved_rows: int
    units_scanned: int
    elements_expanded: int
    total_seconds: float
    resilience: Optional[ScanReport] = None
    filter_stats: Optional[LocalFilterStats] = None
    #: full IOMetrics counter delta for this request (see
    #: :class:`ThresholdPartial`)
    io_delta: Optional[Dict[str, int]] = None


def encode_error(exc: BaseException) -> Tuple[str, str, bool]:
    """The wire form of a worker-side exception."""
    return (
        type(exc).__name__,
        str(exc),
        isinstance(exc, TransientError),
    )


def decode_error(error: Tuple[str, str, bool]) -> Exception:
    """Rebuild a worker error as the matching library exception.

    Unknown names (including non-repro exceptions raised inside a
    worker) come back as :class:`ClusterError` so the caller still gets
    a typed, catchable failure.
    """
    name, message, _transient = error
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except TypeError:
            pass
    return ClusterError(f"{name}: {message}")


def error_is_transient(error: Tuple[str, str, bool]) -> bool:
    return bool(error[2])
