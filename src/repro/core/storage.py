"""Trajectory storage (Section IV-E, Table I).

``TrajectoryStore`` owns the key-value table and the write path:
index with XZ*, extract DP features once at ingest ("we can calculate
the DP features of a trajectory before storing, so we do not need to
calculate DP features of extracted trajectories again", Section V-D),
salt the row key, and put.  It also turns index-value ranges into
per-shard row-key scan ranges for the read path.

``key_encoding`` selects between the paper's integer encoding and the
TraSS-S string encoding (the Figure 13(c) comparison); both are fully
functional engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.codec import decode_row, encode_row
from repro.core.config import TraSSConfig
from repro.core.executor import ParallelScanExecutor
from repro.exceptions import KVStoreError, QueryError
from repro.features.dp_features import DPFeatures, extract_dp_features
from repro.geometry.trajectory import Trajectory
from repro.index.ranges import IndexRange
from repro.index.xzstar import XZStarIndex
from repro.kvstore.metrics import IOMetrics
from repro.kvstore.rowkey import (
    encode_rowkey,
    encode_string_rowkey,
    rowkey_range,
    shard_of,
)
from repro.kvstore.table import KVTable, ScanRange

INTEGER_KEYS = "integer"
STRING_KEYS = "string"


@dataclass(frozen=True)
class TrajectoryRecord:
    """A decoded stored row."""

    tid: str
    points: Tuple[Tuple[float, float], ...]
    features: DPFeatures
    index_value: int

    def as_trajectory(self) -> Trajectory:
        return Trajectory(self.tid, self.points)


class TrajectoryStore:
    """The trajectory table plus its XZ* placement logic."""

    def __init__(
        self,
        config: Optional[TraSSConfig] = None,
        key_encoding: str = INTEGER_KEYS,
    ):
        if key_encoding not in (INTEGER_KEYS, STRING_KEYS):
            raise QueryError(
                f"key_encoding must be {INTEGER_KEYS!r} or {STRING_KEYS!r}, "
                f"got {key_encoding!r}"
            )
        self.config = config if config is not None else TraSSConfig()
        self.key_encoding = key_encoding
        self.index = XZStarIndex(self.config.max_resolution, self.config.bounds)
        self.table = KVTable(
            name="trajectory",
            max_region_rows=self.config.max_region_rows,
        )
        #: every query-path range scan goes through this executor
        #: (retry / backoff / circuit breaker / degraded mode, fanned
        #: out over ``config.scan_workers`` threads when > 1)
        self.executor = ParallelScanExecutor.from_config(self.table, self.config)
        self.trajectory_count = 0
        #: index value -> number of stored trajectories (distribution stats)
        self.value_histogram: Dict[int, int] = {}
        #: decoded-record cache; ``None`` when ``config.cache_mb == 0``
        self.record_cache = None
        #: columnar decoded-candidate cache; ``None`` unless
        #: ``config.vectorized_filter`` and a cache budget are both on
        self.columnar_cache = None
        self._wire_caches()
        self._wire_telemetry()

    def _wire_caches(self) -> None:
        """Attach the cache tiers ``config.cache_mb`` pays for.

        Half the budget fronts the LSM scans (block cache), half holds
        decoded candidates — as :class:`TrajectoryRecord`\\ s, or, with
        ``vectorized_filter`` on, split evenly with the columnar tier
        the batch filter reads.  Called again after :meth:`load`
        replaces the table.
        """
        from repro.kvstore.cache import columnar_cache, record_cache

        budget = int(self.config.cache_mb * 1024 * 1024)
        self.table.enable_scan_cache(budget // 2)
        decoded = budget - budget // 2
        if budget and self.config.vectorized_filter:
            self.record_cache = record_cache(decoded // 2)
            self.columnar_cache = columnar_cache(decoded - decoded // 2)
        else:
            self.record_cache = record_cache(decoded) if budget else None
            self.columnar_cache = None

    def _wire_telemetry(self) -> None:
        """Attach the storage telemetry sink when configured.

        Builds the fixed key-space heatmap grid from the store's shape
        and hangs a :class:`~repro.obs.storage_stats.StorageTelemetry`
        off the table.  With ``config.storage_telemetry`` off the table
        attribute stays ``None`` and the scan path does no telemetry
        work at all.  Called again after :meth:`load` replaces the
        table (the grid depends only on config, so persisted heat can
        be restored on top).
        """
        if not self.config.storage_telemetry:
            self.table.storage_telemetry = None
            return
        from repro.obs.heatmap import KeySpaceHeatmap, key_space_boundaries
        from repro.obs.storage_stats import StorageTelemetry

        heatmap = KeySpaceHeatmap(
            key_space_boundaries(self, self.config.heatmap_buckets_per_shard),
            half_life=self.config.heat_decay_queries,
        )
        self.table.storage_telemetry = StorageTelemetry(heatmap)

    def boundary_key(self, shard: int, value: int) -> bytes:
        """The smallest row key of ``(shard, value)`` under the active
        key encoding — the heatmap's bucket-boundary generator."""
        if self.key_encoding == INTEGER_KEYS:
            return encode_rowkey(shard, value, "")
        return self._string_prefix(shard, value)

    def configure_execution(
        self,
        scan_workers: Optional[int] = None,
        cache_mb: Optional[float] = None,
        plan_cache_size: Optional[int] = None,
        vectorized_filter: Optional[bool] = None,
    ) -> None:
        """Re-tune the execution performance layer in place.

        ``None`` keeps a knob as configured.  Changes are validated
        through :class:`TraSSConfig` and rebuild the executor pool and
        cache tiers; the index, table and stored rows are untouched.
        """
        import dataclasses

        changes = {}
        if scan_workers is not None:
            changes["scan_workers"] = scan_workers
        if cache_mb is not None:
            changes["cache_mb"] = cache_mb
        if plan_cache_size is not None:
            changes["plan_cache_size"] = plan_cache_size
        if vectorized_filter is not None:
            changes["vectorized_filter"] = vectorized_filter
        if not changes:
            return
        self.config = dataclasses.replace(self.config, **changes)
        self.executor = ParallelScanExecutor.from_config(self.table, self.config)
        self._wire_caches()

    @property
    def metrics(self) -> IOMetrics:
        return self.table.metrics

    def install_fault_injector(self, injector) -> None:
        """Attach (or with ``None`` detach) a
        :class:`~repro.kvstore.faults.FaultInjector` to the table.

        Either direction starts a fresh fault epoch: circuits opened
        under the previous schedule (and accumulated virtual backoff)
        are reset so they cannot short-circuit the next run's scans."""
        self.table.fault_injector = injector
        self.executor.reset()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _rowkey(self, shard: int, value: int, tid: str) -> bytes:
        if self.key_encoding == INTEGER_KEYS:
            return encode_rowkey(shard, value, tid)
        element, code = self.index.decode(value)
        return encode_string_rowkey(shard, element.sequence_str, code, tid)

    def _prepare(self, trajectory: Trajectory) -> Tuple[bytes, bytes, int]:
        """Row key, row blob and index value for one trajectory."""
        placed = self.index.index(trajectory)
        features = extract_dp_features(
            trajectory.points,
            self.config.dp_tolerance,
            box_mode=self.config.box_mode,
        )
        shard = shard_of(trajectory.tid, self.config.shards)
        key = self._rowkey(shard, placed.value, trajectory.tid)
        blob = encode_row(trajectory.tid, trajectory.points, features)
        return key, blob, placed.value

    def _record_put(self, value: int) -> None:
        self.trajectory_count += 1
        self.value_histogram[value] = self.value_histogram.get(value, 0) + 1

    def put(self, trajectory: Trajectory) -> int:
        """Index, featurise and store one trajectory; returns its value."""
        key, blob, value = self._prepare(trajectory)
        self.table.put(key, blob)
        self._record_put(value)
        return value

    def put_all(
        self, trajectories: Iterable[Trajectory], sorted_ingest: bool = False
    ) -> int:
        """Bulk ingest; returns the number stored.

        With ``sorted_ingest`` the batch is key-sorted before writing,
        turning memtable inserts into appends — the bulk-load idiom for
        LSM stores (HBase bulkload / HFile generation does the same).
        """
        if not sorted_ingest:
            count = 0
            for trajectory in trajectories:
                self.put(trajectory)
                count += 1
            return count
        prepared = [self._prepare(t) for t in trajectories]
        prepared.sort(key=lambda item: item[0])
        for key, blob, value in prepared:
            self.table.put(key, blob)
            self._record_put(value)
        return len(prepared)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def scan_ranges_for(
        self,
        ranges: Sequence[IndexRange],
        shards: Optional[Sequence[int]] = None,
    ) -> List[ScanRange]:
        """Per-shard row-key scan ranges for a set of index-value ranges.

        Every shard must be visited because the salt byte leads the key
        (Section IV-E) — the cost the paper's Figure 19 sweep studies.
        ``shards`` restricts the plan to a subset of salts; the serving
        tier uses this so each shard worker scans only the salts it
        owns.
        """
        if self.key_encoding != INTEGER_KEYS:
            return self._string_scan_ranges_for(ranges, shards)
        shard_ids = (
            range(self.config.shards) if shards is None else sorted(shards)
        )
        out: List[ScanRange] = []
        for shard in shard_ids:
            for index_range in ranges:
                start, stop = rowkey_range(
                    shard, index_range.start, index_range.stop
                )
                out.append(ScanRange(start, stop))
        return out

    def _string_prefix(self, shard: int, value: int) -> bytes:
        element, code = self.index.decode(value)
        return bytes([shard]) + f"{element.sequence_str}#{code:02d}#".encode(
            "utf-8"
        )

    def _string_scan_ranges_for(
        self,
        ranges: Sequence[IndexRange],
        shards: Optional[Sequence[int]] = None,
    ) -> List[ScanRange]:
        """Scan ranges under the TraSS-S string encoding.

        Because ``'#'`` sorts below every digit, depth-first string keys
        are order-isomorphic to the integer values for all non-root
        elements, so a contiguous value range still maps to one key
        range.  Root-element values sort differently (their sequence is
        empty) and are emitted as individual prefix scans.
        """
        root_start = self.index.root_block_start
        shard_ids = (
            range(self.config.shards) if shards is None else sorted(shards)
        )
        out: List[ScanRange] = []
        for shard in shard_ids:
            for index_range in ranges:
                lo, hi = index_range.start, index_range.stop
                for value in range(max(lo, root_start), hi):
                    prefix = self._string_prefix(shard, value)
                    out.append(ScanRange(prefix, prefix + b"\xff"))
                hi = min(hi, root_start)
                if lo < hi:
                    start = self._string_prefix(shard, lo)
                    stop = self._string_prefix(shard, hi - 1) + b"\xff"
                    out.append(ScanRange(start, stop))
        return out

    def record_decoder(self, key: bytes, value: bytes) -> TrajectoryRecord:
        """The scan/refine-path decode (no index value), record-cached.

        Keys embed the table generation, so a cached record can never
        outlive a write to its row: after any mutation the old entry is
        unreachable and ages out of the LRU.  Hits and misses are
        counted as ``record_cache_*`` in :class:`IOMetrics`; cache hits
        deliberately do **not** reduce ``rows_scanned``-style counters,
        which account logical I/O.
        """
        cache = self.record_cache
        if cache is None:
            tid, points, features = decode_row(value)
            return TrajectoryRecord(tid, tuple(points), features, -1)
        cache_key = (bytes(key), self.table.generation)
        record = cache.get(cache_key)
        if record is not None:
            self.table.metrics.record_cache_hits += 1
            return record
        self.table.metrics.record_cache_misses += 1
        tid, points, features = decode_row(value)
        record = TrajectoryRecord(tid, tuple(points), features, -1)
        cache.put(cache_key, record, cost=len(key) + len(value))
        return record

    def columnar_decoder(self, key: bytes, value: bytes):
        """The vectorised-path decode: one row straight into a
        :class:`~repro.core.columnar.ColumnarRecord`, columnar-cached.

        Mirrors :meth:`record_decoder` — keys embed the table
        generation, hits/misses count as ``columnar_cache_*`` — and a
        cached entry keeps its lazily built scalar views, so a warm row
        never re-decodes for either filtering or refinement.
        """
        from repro.core.columnar import decode_row_columnar

        cache = self.columnar_cache
        if cache is None:
            return decode_row_columnar(value)
        cache_key = (bytes(key), self.table.generation)
        record = cache.get(cache_key)
        if record is not None:
            self.table.metrics.columnar_cache_hits += 1
            return record
        self.table.metrics.columnar_cache_misses += 1
        record = decode_row_columnar(value)
        cache.put(cache_key, record, cost=len(key) + len(value))
        return record

    def decode_record(self, key: bytes, value: bytes) -> TrajectoryRecord:
        tid, points, features = decode_row(value)
        if self.key_encoding == INTEGER_KEYS:
            from repro.kvstore.rowkey import decode_rowkey

            _, index_value, _ = decode_rowkey(key)
        else:
            from repro.kvstore.rowkey import decode_string_rowkey

            _, sequence, code, _ = decode_string_rowkey(key)
            from repro.index.quadrant import Element

            element = Element.from_sequence_str(sequence) if sequence else None
            if element is None:
                from repro.index.quadrant import ROOT

                element = ROOT
            index_value = self.index.value(element, code)
        return TrajectoryRecord(tid, tuple(points), features, index_value)

    def all_records(self) -> Iterator[TrajectoryRecord]:
        """Full-table scan (ground truth / verification paths)."""
        for key, value in self.table.full_scan():
            yield self.decode_record(key, value)

    # ------------------------------------------------------------------
    # Storage statistics (Figures 12 and 13)
    # ------------------------------------------------------------------
    def average_rowkey_bytes(self) -> float:
        """Mean row-key length — the Figure 13(c) metric."""
        total = 0
        count = 0
        for key, _ in self.table.full_scan():
            total += len(key)
            count += 1
        if count == 0:
            raise KVStoreError("no rows stored")
        return total / count

    def resolution_histogram(self) -> Dict[int, int]:
        """Trajectory count per element resolution (Figure 12(a))."""
        out: Dict[int, int] = {}
        for value, count in self.value_histogram.items():
            element, _ = self.index.decode(value)
            out[element.level] = out.get(element.level, 0) + count
        return out

    def position_code_histogram(self) -> Dict[int, int]:
        """Trajectory count per position code (Figure 12(b))."""
        out: Dict[int, int] = {}
        for value, count in self.value_histogram.items():
            _, code = self.index.decode(value)
            out[code] = out.get(code, 0) + count
        return out

    def selectivity(self) -> float:
        """Distinct index values over row count (Figures 14-15)."""
        if self.trajectory_count == 0:
            raise KVStoreError("no rows stored")
        return len(self.value_histogram) / self.trajectory_count

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str, compact: bool = False) -> None:
        """Snapshot the store (config + table) into a directory.

        ``compact=True`` writes regions as compressed mmap segments
        (``.seg``) instead of plain SSTables — same entries, several
        times fewer bytes, and lazily loadable.
        """
        import json
        import os

        from repro.kvstore.persistence import save_table

        save_table(self.table, directory, compact=compact)
        meta = {
            "key_encoding": self.key_encoding,
            # Persisted statistics let `load` skip the full-table scan
            # that would otherwise force every lazy segment block to
            # materialise (they are ignored when a WAL tail exists —
            # the table then differs from the snapshot they describe).
            "stats": {
                "trajectory_count": self.trajectory_count,
                "value_histogram": {
                    str(value): count
                    for value, count in self.value_histogram.items()
                },
            },
            "config": {
                "max_resolution": self.config.max_resolution,
                "bounds": [
                    self.config.bounds.min_x,
                    self.config.bounds.min_y,
                    self.config.bounds.max_x,
                    self.config.bounds.max_y,
                ],
                "shards": self.config.shards,
                "dp_tolerance": self.config.dp_tolerance,
                "measure_name": self.config.measure_name,
                "box_mode": self.config.box_mode,
                "max_planned_elements": self.config.max_planned_elements,
                "range_merge_gap": self.config.range_merge_gap,
                "max_region_rows": self.config.max_region_rows,
                "retry_max_attempts": self.config.retry_max_attempts,
                "retry_backoff_base": self.config.retry_backoff_base,
                "retry_backoff_max": self.config.retry_backoff_max,
                "retry_jitter": self.config.retry_jitter,
                "scan_deadline_seconds": self.config.scan_deadline_seconds,
                "degraded_mode": self.config.degraded_mode,
                "breaker_failure_threshold": (
                    self.config.breaker_failure_threshold
                ),
                "breaker_cooldown_seconds": (
                    self.config.breaker_cooldown_seconds
                ),
                "scan_workers": self.config.scan_workers,
                "cache_mb": self.config.cache_mb,
                "plan_cache_size": self.config.plan_cache_size,
                "vectorized_filter": self.config.vectorized_filter,
                "slow_query_threshold_seconds": (
                    self.config.slow_query_threshold_seconds
                ),
                "slow_query_log_size": self.config.slow_query_log_size,
                "storage_telemetry": self.config.storage_telemetry,
                "heatmap_buckets_per_shard": (
                    self.config.heatmap_buckets_per_shard
                ),
                "heat_decay_queries": self.config.heat_decay_queries,
                "workload_log_size": self.config.workload_log_size,
            },
        }
        with open(os.path.join(directory, "STORE.json"), "w") as fh:
            json.dump(meta, fh, indent=2)

    @classmethod
    def load(cls, directory: str) -> "TrajectoryStore":
        """Restore a store saved with :meth:`save`.

        The value histogram and trajectory count are rebuilt from the
        table, so statistics survive the round trip.
        """
        import json
        import os

        from repro.index.bounds import SpaceBounds
        from repro.kvstore.persistence import load_table

        try:
            with open(os.path.join(directory, "STORE.json")) as fh:
                meta = json.load(fh)
        except FileNotFoundError:
            raise KVStoreError(f"no store metadata in {directory}") from None
        cfg_raw = meta["config"]
        config = TraSSConfig(
            max_resolution=cfg_raw["max_resolution"],
            bounds=SpaceBounds(*cfg_raw["bounds"]),
            shards=cfg_raw["shards"],
            dp_tolerance=cfg_raw["dp_tolerance"],
            measure_name=cfg_raw["measure_name"],
            box_mode=cfg_raw.get("box_mode", "chord"),
            max_planned_elements=cfg_raw["max_planned_elements"],
            range_merge_gap=cfg_raw["range_merge_gap"],
            max_region_rows=cfg_raw["max_region_rows"],
            retry_max_attempts=cfg_raw.get("retry_max_attempts", 4),
            retry_backoff_base=cfg_raw.get("retry_backoff_base", 0.01),
            retry_backoff_max=cfg_raw.get("retry_backoff_max", 1.0),
            retry_jitter=cfg_raw.get("retry_jitter", 0.25),
            scan_deadline_seconds=cfg_raw.get("scan_deadline_seconds"),
            degraded_mode=cfg_raw.get("degraded_mode", False),
            breaker_failure_threshold=cfg_raw.get(
                "breaker_failure_threshold", 5
            ),
            breaker_cooldown_seconds=cfg_raw.get(
                "breaker_cooldown_seconds", 30.0
            ),
            scan_workers=cfg_raw.get("scan_workers", 1),
            cache_mb=cfg_raw.get("cache_mb", 0.0),
            plan_cache_size=cfg_raw.get("plan_cache_size", 128),
            vectorized_filter=cfg_raw.get("vectorized_filter", False),
            slow_query_threshold_seconds=cfg_raw.get(
                "slow_query_threshold_seconds"
            ),
            slow_query_log_size=cfg_raw.get("slow_query_log_size", 128),
            storage_telemetry=cfg_raw.get("storage_telemetry", True),
            heatmap_buckets_per_shard=cfg_raw.get(
                "heatmap_buckets_per_shard", 16
            ),
            heat_decay_queries=cfg_raw.get("heat_decay_queries", 512.0),
            workload_log_size=cfg_raw.get("workload_log_size", 1024),
        )
        store = cls(config, meta["key_encoding"])
        store.table = load_table(directory)
        # The executor, caches and telemetry built in __init__ point at
        # the discarded empty table; rebind them to the restored one.
        store.executor = ParallelScanExecutor.from_config(store.table, config)
        store._wire_caches()
        stats = meta.get("stats")
        if stats is not None and not os.path.exists(
            os.path.join(directory, "wal.log")
        ):
            # The snapshot matches the table exactly (no WAL tail), so
            # the persisted statistics are authoritative — restoring
            # them keeps mmap segments lazy: no full-table scan, no
            # block materialisation at load time.
            store.trajectory_count = int(stats["trajectory_count"])
            store.value_histogram = {
                int(value): count
                for value, count in stats["value_histogram"].items()
            }
        else:
            for key, value in store.table.full_scan():
                record = store.decode_record(key, value)
                store.trajectory_count += 1
                store.value_histogram[record.index_value] = (
                    store.value_histogram.get(record.index_value, 0) + 1
                )
        # Wired after the statistics rebuild scan above, so that scan
        # does not smear synthetic heat across the restored heatmap.
        store._wire_telemetry()
        return store
