"""Resilient multi-range scan execution.

Every range scan the query engine issues — threshold search, top-k
materialisation, spatial range queries — goes through a
:class:`ResilientExecutor` instead of hitting the table directly.  On a
healthy store the executor is a transparent pass-through (identical
rows, identical I/O counters); under faults it supplies the operational
behaviour a distributed deployment needs:

* **retry with exponential backoff + jitter** for
  :class:`~repro.exceptions.TransientError`\\ s — backoff time is
  *virtual* (charged against the deadline budget, never slept), so
  chaos suites run at full speed while timeout semantics stay real;
* a per-region **circuit breaker**: a region that keeps failing is
  short-circuited for a cooldown instead of burning the retry budget of
  every subsequent range that touches it;
* a per-query **deadline budget** (:class:`ScanTimeoutError` when
  exhausted);
* **degraded mode**: instead of failing the query, exhausted ranges are
  recorded on a :class:`ScanReport` — exactly which key ranges were
  skipped and what fraction completed — so callers can return partial
  results with honest completeness accounting.

The report rides on the search result objects; benchmarks can therefore
plot answer completeness as a function of injected fault rates.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    RegionUnavailableError,
    ScanTimeoutError,
    TransientError,
)
from repro.kvstore.metrics import IOMetrics
from repro.kvstore.table import KVTable, ScanRange
from repro.obs.tracing import NULL_TRACER

RegionSpan = Tuple[Optional[bytes], Optional[bytes]]


def _key_label(key: Optional[bytes]) -> str:
    """A short printable label for a row key in span attributes."""
    if key is None:
        return "-inf"
    return key[:12].hex()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with proportional jitter."""

    max_attempts: int = 4
    backoff_base: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.25

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.backoff_base * self.backoff_multiplier**attempt,
            self.backoff_max,
        )
        if self.jitter > 0.0:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


class CircuitBreaker:
    """Per-region failure tracking with open/half-open semantics.

    ``failure_threshold`` consecutive failures of one region open its
    circuit: further scans touching it fail fast (no retries) until
    ``cooldown_seconds`` of executor time pass, after which exactly
    **one** probe is allowed through (half-open); success closes the
    circuit, failure re-opens it immediately.

    The class is safe under concurrent scans (the parallel executor's
    worker threads and the serving coordinator both share one breaker):
    all state transitions happen under a lock, and the half-open window
    admits a single probe no matter how many threads race the cooldown
    expiry — the others keep seeing the circuit as open until the probe
    resolves.  A probe whose caller never reports back (e.g. the range
    was skipped) stops blocking after a further ``cooldown_seconds``,
    when the next caller is admitted as a fresh probe.
    """

    def __init__(
        self, failure_threshold: int = 5, cooldown_seconds: float = 30.0
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._lock = threading.Lock()
        self._consecutive: Dict[RegionSpan, int] = {}
        self._open_until: Dict[RegionSpan, float] = {}
        #: span -> admission time of the in-flight half-open probe
        self._probe_started: Dict[RegionSpan, float] = {}
        #: total open transitions
        self.trips = 0
        #: total half-open probes admitted
        self.probes_admitted = 0

    def snapshot(self) -> Dict[str, object]:
        """Current breaker state for operational reporting (the
        ``repro chaos`` / ``repro stats`` CLIs and the metrics
        registry's ``trass.resilience.breaker.*`` gauges)."""
        with self._lock:
            return {
                "open_regions": len(self._open_until),
                "tracked_regions": len(self._consecutive),
                "trips": self.trips,
                "probes_admitted": self.probes_admitted,
                "any_open": bool(self._open_until),
            }

    def is_open(self, span: RegionSpan, now: float) -> bool:
        """Whether ``span``'s circuit rejects a scan starting ``now``.

        A ``False`` return on a span whose cooldown just expired *is*
        the probe admission: the caller is expected to run the scan and
        report back via :meth:`record_success` / :meth:`record_failure`.
        Concurrent callers in the same half-open window keep getting
        ``True``.
        """
        with self._lock:
            until = self._open_until.get(span)
            if until is None:
                probe = self._probe_started.get(span)
                if probe is None:
                    return False
                if now - probe >= self.cooldown_seconds:
                    # The previous probe never resolved; admit another.
                    self._probe_started[span] = now
                    self.probes_admitted += 1
                    return False
                return True  # probe in flight: everyone else waits
            if now >= until:
                # Cooldown over: half-open — admit exactly this caller
                # as the probe; one strike re-opens immediately.
                del self._open_until[span]
                self._consecutive[span] = self.failure_threshold - 1
                self._probe_started[span] = now
                self.probes_admitted += 1
                return False
            return True

    def record_failure(self, span: RegionSpan, now: float) -> bool:
        """Count a failure; returns True on a closed->open transition."""
        with self._lock:
            self._probe_started.pop(span, None)
            count = self._consecutive.get(span, 0) + 1
            self._consecutive[span] = count
            if (
                count >= self.failure_threshold
                and span not in self._open_until
            ):
                self._open_until[span] = now + self.cooldown_seconds
                self.trips += 1
                return True
            return False

    def record_success(self, span: RegionSpan) -> None:
        with self._lock:
            self._probe_started.pop(span, None)
            self._consecutive[span] = 0
            self._open_until.pop(span, None)

    def clear_probe(self, span: RegionSpan) -> None:
        """Resolve an in-flight probe of ``span`` as a success.

        Narrower than :meth:`record_success`: touches nothing unless a
        probe is actually pending, so spans that merely share a scan
        range with the probed region keep their failure history.
        """
        with self._lock:
            if self._probe_started.pop(span, None) is not None:
                self._consecutive[span] = 0

    @property
    def any_probing(self) -> bool:
        with self._lock:
            return bool(self._probe_started)

    def reset(self) -> None:
        """Forget all failure history (open circuits included)."""
        with self._lock:
            self._consecutive.clear()
            self._open_until.clear()
            self._probe_started.clear()

    @property
    def any_open(self) -> bool:
        with self._lock:
            return bool(self._open_until) or bool(self._probe_started)


@dataclass
class ScanReport:
    """Completeness accounting for one resilient scan (or query).

    ``completeness`` is the fraction of planned key ranges that were
    fully scanned; ``skipped_ranges`` lists exactly the ranges whose
    rows may be missing from the answer — the contract of degraded
    mode.
    """

    ranges_total: int = 0
    ranges_completed: int = 0
    skipped_ranges: List[ScanRange] = field(default_factory=list)
    #: retry attempts performed (transient failures that were re-tried)
    retries: int = 0
    #: transient faults observed (including ones retries then masked)
    faults_encountered: int = 0
    #: ranges rejected outright by an open circuit breaker
    breaker_short_circuits: int = 0
    #: virtual seconds spent backing off
    backoff_seconds: float = 0.0
    deadline_exceeded: bool = False

    @property
    def completeness(self) -> float:
        if self.ranges_total == 0:
            return 1.0
        return self.ranges_completed / self.ranges_total

    @property
    def degraded(self) -> bool:
        return bool(self.skipped_ranges)

    def merge_from(self, other: "ScanReport") -> None:
        """Fold a per-worker sub-report into this one (plan order).

        The parallel executor accounts each range on a private report
        and merges them back deterministically, so a merged report is
        field-for-field identical to the one a sequential pass over the
        same ranges would have produced.
        """
        self.ranges_total += other.ranges_total
        self.ranges_completed += other.ranges_completed
        self.skipped_ranges.extend(other.skipped_ranges)
        self.retries += other.retries
        self.faults_encountered += other.faults_encountered
        self.breaker_short_circuits += other.breaker_short_circuits
        self.backoff_seconds += other.backoff_seconds
        self.deadline_exceeded = self.deadline_exceeded or other.deadline_exceeded

    def summary(self) -> Dict[str, object]:
        return {
            "ranges_total": self.ranges_total,
            "ranges_completed": self.ranges_completed,
            "ranges_skipped": len(self.skipped_ranges),
            "completeness": self.completeness,
            "retries": self.retries,
            "faults_encountered": self.faults_encountered,
            "breaker_short_circuits": self.breaker_short_circuits,
            "backoff_seconds": self.backoff_seconds,
            "deadline_exceeded": self.deadline_exceeded,
        }


class ResilientExecutor:
    """Runs multi-range scans with retry, breaker, deadline, degraded
    mode.  One per :class:`~repro.core.storage.TrajectoryStore`."""

    def __init__(
        self,
        table: KVTable,
        policy: Optional[RetryPolicy] = None,
        *,
        deadline_seconds: Optional[float] = None,
        degraded_mode: bool = False,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 0,
    ):
        self.table = table
        self.policy = policy if policy is not None else RetryPolicy()
        self.deadline_seconds = deadline_seconds
        self.degraded_mode = degraded_mode
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._rng = random.Random(seed)
        #: virtual seconds of backoff charged against deadlines
        self.virtual_backoff_seconds = 0.0
        #: span tracer; the engine swaps in a real one when tracing is
        #: enabled (NULL_TRACER costs one attribute load per range)
        self.tracer = NULL_TRACER

    def reset(self) -> None:
        """Start a fresh fault epoch: clear breaker state and the
        virtual backoff account.

        Called when a fault injector is installed or detached — an open
        circuit earned under one schedule must not short-circuit scans
        of the next (or of the fault-free table)."""
        self.breaker.reset()
        self.virtual_backoff_seconds = 0.0

    @classmethod
    def from_config(cls, table: KVTable, config) -> "ResilientExecutor":
        """Build from the resilience knobs on a ``TraSSConfig``."""
        policy = RetryPolicy(
            max_attempts=config.retry_max_attempts,
            backoff_base=config.retry_backoff_base,
            backoff_max=config.retry_backoff_max,
            jitter=config.retry_jitter,
        )
        breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
        )
        return cls(
            table,
            policy,
            deadline_seconds=config.scan_deadline_seconds,
            degraded_mode=config.degraded_mode,
            breaker=breaker,
        )

    # ------------------------------------------------------------------
    # Clock: wall time plus every virtual charge (injected straggler
    # latency, backoff waits), so deadlines fire in tests without a
    # single real sleep.
    # ------------------------------------------------------------------
    def _now(self) -> float:
        injector = getattr(self.table, "fault_injector", None)
        virtual = injector.virtual_seconds if injector is not None else 0.0
        return time.monotonic() + self.virtual_backoff_seconds + virtual

    def deadline_from_now(self) -> Optional[float]:
        """The absolute deadline a query starting now must meet."""
        if self.deadline_seconds is None:
            return None
        return self._now() + self.deadline_seconds

    def trace_clock(self) -> float:
        """The clock span tracers should read.

        Under fault injection the clock is *purely virtual* (injected
        straggler latency plus backoff charges) so span durations of a
        chaos run are a deterministic function of ``(seed, workload)``;
        on a healthy table it is the executor's wall-plus-virtual
        clock.
        """
        injector = getattr(self.table, "fault_injector", None)
        if injector is not None:
            return self.virtual_backoff_seconds + injector.virtual_seconds
        return self._now()

    # ------------------------------------------------------------------
    def execute(
        self,
        ranges: Sequence[ScanRange],
        fn: Callable[[ScanRange], None],
        report: Optional[ScanReport] = None,
        deadline: Optional[float] = None,
    ) -> ScanReport:
        """Run ``fn`` once per range with full fault handling.

        ``fn`` performs the actual scan work (materialising or
        streaming) and may raise
        :class:`~repro.exceptions.TransientError`; the executor retries
        it per range.  ``fn`` must tolerate partial re-execution — the
        query layer guarantees this via per-trajectory deduplication.
        Pass one ``report`` (and one ``deadline``) across several
        ``execute`` calls to account a whole query against a single
        budget.
        """
        if report is None:
            report = ScanReport()
        if deadline is None:
            deadline = self.deadline_from_now()
        for index, scan_range in enumerate(ranges):
            self._execute_one(scan_range, fn, report, deadline, trace_index=index)
        return report

    def _execute_one(
        self,
        scan_range: ScanRange,
        fn: Callable[[ScanRange], None],
        report: ScanReport,
        deadline: Optional[float],
        trace_index: Optional[int] = None,
        trace_parent=None,
    ) -> None:
        """One range with the full deadline / breaker / retry pipeline,
        wrapped in a ``scan.range`` span when tracing is on.

        The span carries the range keys, the executing worker thread,
        retry / fault / breaker deltas and per-range cache hits;
        ``trace_parent`` carries the submitting thread's span across
        the pool, and ``plan.index`` lets the parallel path reassemble
        children in plan order.  With the no-op tracer this is a single
        attribute check on top of :meth:`_run_range`.
        """
        tracer = self.tracer
        if not tracer.enabled:
            self._run_range(scan_range, fn, report, deadline)
            return
        before = (
            report.retries,
            report.faults_encountered,
            report.breaker_short_circuits,
            report.ranges_completed,
            len(report.skipped_ranges),
        )
        metrics = self.table.metrics
        cache_before = (metrics.block_cache_hits, metrics.record_cache_hits)
        span = tracer.span(
            "scan.range",
            parent=trace_parent,
            start=_key_label(scan_range.start),
            stop=_key_label(scan_range.stop),
        )
        if trace_index is not None:
            span.set_attr("plan.index", trace_index)
        with span:
            span.set_attr("worker", threading.current_thread().name)
            try:
                self._run_range(scan_range, fn, report, deadline)
            finally:
                span.set_attrs(
                    retries=report.retries - before[0],
                    faults=report.faults_encountered - before[1],
                    breaker_rejections=report.breaker_short_circuits
                    - before[2],
                    completed=report.ranges_completed > before[3],
                    skipped=len(report.skipped_ranges) > before[4],
                    block_cache_hits=metrics.block_cache_hits
                    - cache_before[0],
                    record_cache_hits=metrics.record_cache_hits
                    - cache_before[1],
                )

    def _run_range(
        self,
        scan_range: ScanRange,
        fn: Callable[[ScanRange], None],
        report: ScanReport,
        deadline: Optional[float],
    ) -> None:
        """The untraced per-range pipeline (factored out of
        :meth:`execute` so the parallel executor can run it per worker
        against a private report while keeping exact per-range
        semantics)."""
        report.ranges_total += 1
        if deadline is not None and self._now() > deadline:
            self._give_up_deadline(scan_range, report)
            return
        if self.breaker.any_open and self._breaker_rejects(scan_range):
            report.breaker_short_circuits += 1
            if not self.degraded_mode:
                raise RegionUnavailableError(
                    f"circuit breaker open for a region of "
                    f"[{scan_range.start!r}, {scan_range.stop!r})"
                )
            self._skip(scan_range, report)
            return
        self._attempt_range(scan_range, fn, report, deadline)

    def scan_ranges(
        self,
        ranges: Sequence[ScanRange],
        row_filter=None,
        report: Optional[ScanReport] = None,
        on_range_rows: Optional[Callable[[list, object], None]] = None,
    ) -> Tuple[List[Tuple[bytes, bytes]], ScanReport]:
        """Materialise every range; the resilient ``scan_ranges``.

        Rows of a failed attempt are discarded before the retry, so the
        result holds each surviving row exactly once even when faults
        interrupt scans midway.

        ``on_range_rows(chunk, row_filter)`` — when given — fires once
        per *successfully completed* range with that range's surviving
        rows and the row filter that screened them, enabling callers to
        refine while later ranges are still scanning (the scan →
        filter → refine pipeline).
        """
        rows: List[Tuple[bytes, bytes]] = []

        def consume(scan_range: ScanRange) -> None:
            chunk = self.scan_chunk(scan_range, row_filter)
            rows.extend(chunk)
            if on_range_rows is not None and chunk:
                on_range_rows(chunk, row_filter)

        report = self.execute(ranges, consume, report)
        return rows, report

    def scan_chunk(
        self, scan_range: ScanRange, row_filter=None
    ) -> List[Tuple[bytes, bytes]]:
        """One range's surviving rows, honouring batch row filters.

        A filter marked ``batch = True`` (the vectorised local filter)
        cannot ride the per-row pushdown protocol: the range is scanned
        unfiltered, the whole chunk goes through ``accept_batch``, and
        the table counters are restored to exactly what the pushdown
        path would have recorded — every scanned row counts one filter
        evaluation, rejected rows count rejections and never count as
        returned.  ``rows_scanned`` / ``bytes_read`` are unaffected
        (the same rows were read either way).
        """
        if row_filter is None or not getattr(row_filter, "batch", False):
            return list(
                self.table.scan(scan_range.start, scan_range.stop, row_filter)
            )
        raw = list(self.table.scan(scan_range.start, scan_range.stop, None))
        kept = row_filter.accept_batch(raw)
        metrics = self.table.metrics
        rejected = len(raw) - len(kept)
        metrics.filter_evaluations += len(raw)
        metrics.filter_rejections += rejected
        metrics.rows_returned -= rejected
        return kept

    # ------------------------------------------------------------------
    def _range_spans(self, scan_range: ScanRange) -> List[RegionSpan]:
        lo, hi = self.table.overlapping_region_span(
            scan_range.start, scan_range.stop
        )
        return [
            (region.start_key, region.end_key)
            for region in self.table.regions[lo:hi]
        ]

    def _breaker_rejects(self, scan_range: ScanRange) -> bool:
        now = self._now()
        return any(
            self.breaker.is_open(span, now)
            for span in self._range_spans(scan_range)
        )

    def _skip(self, scan_range: ScanRange, report: ScanReport) -> None:
        report.skipped_ranges.append(scan_range)
        self.table.metrics.ranges_skipped += 1

    def _give_up_deadline(
        self, scan_range: ScanRange, report: ScanReport
    ) -> None:
        report.deadline_exceeded = True
        if not self.degraded_mode:
            raise ScanTimeoutError(
                f"scan deadline of {self.deadline_seconds}s exhausted with "
                f"{report.ranges_total - report.ranges_completed} range(s) "
                f"unfinished"
            )
        self._skip(scan_range, report)

    def _attempt_range(
        self,
        scan_range: ScanRange,
        fn: Callable[[ScanRange], None],
        report: ScanReport,
        deadline: Optional[float],
    ) -> None:
        failed_spans: set = set()
        attempt = 0
        while True:
            try:
                fn(scan_range)
            except TransientError as exc:
                report.faults_encountered += 1
                now = self._now()
                span = getattr(exc, "region_span", None)
                breaker_open = False
                if span is not None:
                    failed_spans.add(span)
                    if self.breaker.record_failure(span, now):
                        self.table.metrics.breaker_trips += 1
                    breaker_open = self.breaker.is_open(span, now)
                timed_out = deadline is not None and now > deadline
                if timed_out:
                    self._give_up_deadline(scan_range, report)
                    return
                if attempt + 1 >= self.policy.max_attempts or breaker_open:
                    if self.degraded_mode:
                        self._skip(scan_range, report)
                        return
                    raise
                delay = self.policy.delay(attempt, self._rng)
                self.virtual_backoff_seconds += delay
                report.backoff_seconds += delay
                report.retries += 1
                self.table.metrics.retries += 1
                attempt += 1
            else:
                for span in failed_spans:
                    self.breaker.record_success(span)
                if self.breaker.any_probing:
                    # A probe admitted by the half-open check covers
                    # this range; a clean pass closes its circuit.
                    for span in self._range_spans(scan_range):
                        self.breaker.clear_probe(span)
                report.ranges_completed += 1
                return


class ParallelScanExecutor(ResilientExecutor):
    """A :class:`ResilientExecutor` that fans ``scan_ranges`` out over
    a thread pool.

    The planned ranges are partitioned into contiguous blocks, one per
    worker; each worker runs the *same* per-range pipeline (deadline
    check, breaker check, retry loop) as the sequential path over its
    block, against a private :class:`ScanReport` and a private
    thread-local :class:`IOMetrics` sink.  The main thread then merges
    rows, reports, sinks and filter clones **in plan order**, so
    answers, I/O counters and completeness accounting are identical to
    a sequential execution of the same plan.

    Two situations force the sequential path:

    * ``workers <= 1`` or a single-range plan — nothing to fan out;
    * an installed fault injector — its RNG stream is consumed in
      region-visit order, so only sequential execution keeps a chaos
      schedule a pure function of ``(seed, workload)``.  Resilience
      semantics are therefore bit-identical under fault injection.
    """

    def __init__(self, *args, workers: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.workers = max(1, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        #: serialises ``on_range_rows`` callbacks (refinement) so the
        #: caller needs no locking of its own
        self._callback_lock = threading.Lock()

    @classmethod
    def from_config(cls, table: KVTable, config) -> "ParallelScanExecutor":
        executor = super().from_config(table, config)
        executor.workers = max(1, int(getattr(config, "scan_workers", 1)))
        return executor

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-scan",
            )
        return self._pool

    def scan_ranges(
        self,
        ranges: Sequence[ScanRange],
        row_filter=None,
        report: Optional[ScanReport] = None,
        on_range_rows: Optional[Callable[[list, object], None]] = None,
    ) -> Tuple[List[Tuple[bytes, bytes]], ScanReport]:
        injector = getattr(self.table, "fault_injector", None)
        if self.workers <= 1 or injector is not None or len(ranges) <= 1:
            return super().scan_ranges(ranges, row_filter, report, on_range_rows)
        if report is None:
            report = ScanReport()
        deadline = self.deadline_from_now()
        # Trace-context propagation: workers attach their range spans
        # to the span active on the submitting thread, tagged with the
        # plan index so the tree reassembles in plan order below.
        trace_parent = (
            self.tracer.current_span if self.tracer.enabled else None
        )

        main_telemetry = self.table.storage_telemetry

        def run_part(part: Sequence[ScanRange], base_index: int):
            sink = IOMetrics()
            # Like the IOMetrics sink, each worker records storage
            # telemetry into a private spawn merged back in plan order.
            tel_sink = (
                main_telemetry.spawn() if main_telemetry is not None else None
            )
            self.table.bind_thread_metrics(sink, tel_sink)
            try:
                worker_filter = (
                    row_filter.spawn() if row_filter is not None else None
                )
                chunks: List[List[Tuple[bytes, bytes]]] = []
                sub = ScanReport()
                error: Optional[Exception] = None
                for offset, scan_range in enumerate(part):
                    chunk: List[Tuple[bytes, bytes]] = []

                    def consume(r: ScanRange, _chunk=chunk) -> None:
                        _chunk[:] = self.scan_chunk(r, worker_filter)

                    try:
                        self._execute_one(
                            scan_range,
                            consume,
                            sub,
                            deadline,
                            trace_index=base_index + offset,
                            trace_parent=trace_parent,
                        )
                    except Exception as exc:  # re-raised in plan order below
                        error = exc
                        break  # sequential semantics: stop at the error
                    if on_range_rows is not None and chunk:
                        with self._callback_lock:
                            on_range_rows(chunk, worker_filter)
                    chunks.append(chunk)
                return chunks, sub, worker_filter, sink, tel_sink, error
            finally:
                self.table.unbind_thread_metrics()

        # Contiguous blocks keep the plan-order merge a simple
        # concatenation and give each worker one filter clone and one
        # metrics sink for its whole share.
        workers = min(self.workers, len(ranges))
        per_worker = (len(ranges) + workers - 1) // workers
        parts = [
            ranges[i : i + per_worker]
            for i in range(0, len(ranges), per_worker)
        ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(run_part, part, i * per_worker)
            for i, part in enumerate(parts)
        ]
        rows: List[Tuple[bytes, bytes]] = []
        first_error: Optional[Exception] = None
        for future in futures:  # plan order, regardless of completion order
            chunks, sub, worker_filter, sink, tel_sink, error = future.result()
            self.table.metrics.merge_from(sink)
            if main_telemetry is not None and tel_sink is not None:
                main_telemetry.merge_from(tel_sink)
            report.merge_from(sub)
            if row_filter is not None and worker_filter is not row_filter:
                row_filter.absorb(worker_filter)
            if error is not None and first_error is None:
                first_error = error
            for chunk in chunks:
                rows.extend(chunk)
        if trace_parent is not None:
            # Workers appended their spans in completion order; restore
            # plan order so the rendered tree matches a sequential run.
            self.tracer.sort_children(trace_parent)
        if first_error is not None:
            raise first_error
        return rows, report
