"""Columnar candidate decoding for the vectorised filter path.

``decode_row`` materialises a scanned row as Python objects — tuples of
point tuples plus :class:`~repro.geometry.segment.OrientedBox`
instances — which is exactly the right shape for the scalar lemma
checks and exactly the wrong shape for numpy.  This module decodes the
same blob (layout in :mod:`repro.core.codec`) straight into packed
float64 arrays:

* :class:`ColumnarRecord` — one row: points ``(n, 2)``, DP
  representative points, covering boxes as ``(b, 8)`` parameter rows
  with their axis-aligned envelopes, and the point MBR.  The classic
  :class:`~repro.core.storage.TrajectoryRecord` view (and its
  :class:`~repro.features.dp_features.DPFeatures`) is derived lazily
  and cached, so refinement and the scalar Lemma 14 fallback reuse the
  columnar decode instead of decoding the blob a second time;
* :class:`CandidateBatch` — a scan chunk's records concatenated into
  ragged arrays (values plus per-record offsets/counts), the input the
  vectorised lemma kernels broadcast over.

Numeric parity: every float comes from the same big-endian bytes the
scalar decoder reads, envelopes replay ``box.mbr()``'s corner
arithmetic, and the MBR is the min/max of the same point set — so the
two decoders produce bit-identical geometry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.core.codec import (
    BOX_FIELDS,
    COUNT_DTYPE,
    FLOAT_DTYPE,
    REP_INDEX_DTYPE,
    TID_LEN_DTYPE,
)
from repro.exceptions import KVStoreError
from repro.features.dp_features import DPFeatures, oriented_box_envelopes
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.segment import OrientedBox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.storage import TrajectoryRecord


class ColumnarRecord:
    """One decoded row as packed numpy arrays.

    ``points`` is ``(n, 2)`` float64, ``rep_points`` the gathered
    representative points, ``box_params`` the ``(b, 8)`` codec-order
    box parameters with ``box_envelopes`` ``(b, 4)`` alongside, and
    ``mbr_arr`` the 4-vector ``(min_x, min_y, max_x, max_y)``.
    ``features`` / ``as_record()`` build the scalar views once and keep
    them, so a cached ColumnarRecord never re-decodes or re-derives.
    """

    __slots__ = (
        "tid",
        "points",
        "rep_indexes",
        "rep_points",
        "box_params",
        "box_envelopes",
        "mbr_arr",
        "_features",
        "_record",
    )

    def __init__(
        self,
        tid: str,
        points: np.ndarray,
        rep_indexes: np.ndarray,
        box_params: np.ndarray,
    ):
        self.tid = tid
        self.points = points
        self.rep_indexes = rep_indexes
        self.rep_points = points[rep_indexes]
        self.box_params = box_params
        self.box_envelopes = oriented_box_envelopes(box_params)
        self.mbr_arr = np.concatenate([points.min(axis=0), points.max(axis=0)])
        self._features: Optional[DPFeatures] = None
        self._record = None

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def features(self) -> DPFeatures:
        """The scalar :class:`DPFeatures` view (built once, cached)."""
        feats = self._features
        if feats is None:
            boxes = tuple(
                OrientedBox(
                    Point(float(p[0]), float(p[1])),
                    (float(p[2]), float(p[3])),
                    float(p[4]),
                    float(p[5]),
                    float(p[6]),
                    float(p[7]),
                )
                for p in self.box_params
            )
            feats = DPFeatures(
                rep_indexes=tuple(int(i) for i in self.rep_indexes),
                rep_points=tuple(
                    (float(x), float(y)) for x, y in self.rep_points
                ),
                boxes=boxes,
                mbr=MBR(
                    float(self.mbr_arr[0]),
                    float(self.mbr_arr[1]),
                    float(self.mbr_arr[2]),
                    float(self.mbr_arr[3]),
                ),
            )
            self._features = feats
        return feats

    def as_record(self) -> "TrajectoryRecord":
        """A :class:`TrajectoryRecord` over the columnar arrays.

        The points stay the decoded ``(n, 2)`` array — the measure
        kernels read coordinates positionally, so refinement produces
        the same float64s as the tuple-of-tuples form.
        """
        rec = self._record
        if rec is None:
            from repro.core.storage import TrajectoryRecord

            rec = TrajectoryRecord(self.tid, self.points, self.features, -1)
            self._record = rec
        return rec


def decode_row_columnar(data: bytes) -> ColumnarRecord:
    """Decode one row value straight into a :class:`ColumnarRecord`.

    Reads the same layout as :func:`repro.core.codec.decode_row` with
    ``np.frombuffer`` instead of ``struct`` — including the trailing-
    bytes corruption check.
    """
    try:
        n_points = int(np.frombuffer(data, COUNT_DTYPE, 1, 0)[0])
        offset = 4
        points = (
            np.frombuffer(data, FLOAT_DTYPE, 2 * n_points, offset)
            .reshape(n_points, 2)
            .astype(np.float64)
        )
        offset += 16 * n_points
        n_rep = int(np.frombuffer(data, COUNT_DTYPE, 1, offset)[0])
        offset += 4
        rep_indexes = np.frombuffer(
            data, REP_INDEX_DTYPE, n_rep, offset
        ).astype(np.int64)
        offset += 4 * n_rep
        n_boxes = int(np.frombuffer(data, COUNT_DTYPE, 1, offset)[0])
        offset += 4
        box_params = (
            np.frombuffer(data, FLOAT_DTYPE, BOX_FIELDS * n_boxes, offset)
            .reshape(n_boxes, BOX_FIELDS)
            .astype(np.float64)
        )
        offset += 8 * BOX_FIELDS * n_boxes
        tid_len = int(np.frombuffer(data, TID_LEN_DTYPE, 1, offset)[0])
        offset += 2
        tid = bytes(data[offset : offset + tid_len]).decode("utf-8")
        offset += tid_len
    except (ValueError, UnicodeDecodeError) as exc:
        raise KVStoreError(f"corrupt trajectory row: {exc}") from exc
    if n_points == 0:
        raise KVStoreError("corrupt trajectory row: zero points")
    if offset != len(data):
        raise KVStoreError(
            f"trailing bytes in trajectory row ({len(data) - offset})"
        )
    if n_rep and (rep_indexes.min() < 0 or rep_indexes.max() >= n_points):
        raise KVStoreError("corrupt trajectory row: rep index out of range")
    return ColumnarRecord(tid, points, rep_indexes, box_params)


class CandidateBatch:
    """A chunk of :class:`ColumnarRecord` concatenated for broadcasting.

    Fixed-width per-record values (start/end points, MBRs) are stacked
    into ``(n, ...)`` arrays; the ragged ones (representative points,
    boxes) are concatenated with per-record offsets/counts plus a
    record-id column (``rep_cand_ids``) so kernels can scatter
    per-element verdicts back to records with ``bincount``.
    """

    __slots__ = (
        "records",
        "size",
        "starts",
        "ends",
        "mbrs",
        "rep_points",
        "rep_counts",
        "rep_cand_ids",
        "box_params",
        "box_envelopes",
        "box_counts",
        "box_offsets",
    )

    def __init__(self, records: Sequence[ColumnarRecord]):
        self.records: List[ColumnarRecord] = list(records)
        n = self.size = len(self.records)
        self.starts = np.empty((n, 2), dtype=np.float64)
        self.ends = np.empty((n, 2), dtype=np.float64)
        self.mbrs = np.empty((n, 4), dtype=np.float64)
        for i, rec in enumerate(self.records):
            self.starts[i] = rec.points[0]
            self.ends[i] = rec.points[-1]
            self.mbrs[i] = rec.mbr_arr
        self.rep_counts = np.fromiter(
            (len(r.rep_points) for r in self.records), dtype=np.int64, count=n
        )
        self.box_counts = np.fromiter(
            (len(r.box_params) for r in self.records), dtype=np.int64, count=n
        )
        self.box_offsets = np.concatenate(
            ([0], np.cumsum(self.box_counts)[:-1])
        ) if n else np.zeros(0, dtype=np.int64)
        self.rep_cand_ids = np.repeat(np.arange(n), self.rep_counts)
        if n:
            self.rep_points = np.concatenate(
                [r.rep_points for r in self.records]
            )
            self.box_params = np.concatenate(
                [r.box_params for r in self.records]
            )
            self.box_envelopes = np.concatenate(
                [r.box_envelopes for r in self.records]
            )
        else:
            self.rep_points = np.empty((0, 2), dtype=np.float64)
            self.box_params = np.empty((0, BOX_FIELDS), dtype=np.float64)
            self.box_envelopes = np.empty((0, 4), dtype=np.float64)
