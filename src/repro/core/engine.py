"""The TraSS facade — the library's main entry point.

Typical use::

    from repro import TraSS, Trajectory

    engine = TraSS.build(trajectories)
    result = engine.threshold_search(query, eps=0.01)
    top = engine.topk_search(query, k=50)

The engine owns a :class:`~repro.core.storage.TrajectoryStore` (the
key-value table plus XZ* placement), a
:class:`~repro.core.pruning.GlobalPruner`, and the configured measure.
Per-call ``measure`` overrides support the Section VII experiments
(Hausdorff, DTW) without rebuilding the store.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import TraSSConfig
from repro.core.pruning import GlobalPruner, PruningResult
from repro.core.storage import INTEGER_KEYS, TrajectoryStore
from repro.core.threshold import ThresholdSearchResult, threshold_search
from repro.core.topk import TopKSearchResult, topk_search
from repro.exceptions import QueryError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.kvstore.metrics import IOMetrics
from repro.measures.base import Measure, get_measure
from repro.obs.registry import MetricsRegistry, update_registry_from_engine
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import NULL_TRACER, Tracer


class TraSS:
    """Trajectory similarity search over an embedded key-value store."""

    def __init__(
        self,
        config: Optional[TraSSConfig] = None,
        key_encoding: str = INTEGER_KEYS,
    ):
        self.config = config if config is not None else TraSSConfig()
        self.store = TrajectoryStore(self.config, key_encoding)
        self.pruner = GlobalPruner(
            self.store.index,
            self.config.max_planned_elements,
            plan_cache_size=self.config.plan_cache_size,
            metrics=self.store.metrics,
            range_merge_gap=self.config.range_merge_gap,
        )
        self.measure: Measure = self.config.make_measure()
        self._init_observability()

    def _init_observability(self) -> None:
        """Wire the tracing / metrics / slow-log read models.

        Tracing starts off (the :data:`NULL_TRACER` sentinel); the
        registry and slow-query log exist from the start so counters
        and slow queries accumulate whether or not anyone exports them.
        """
        self._tracer = NULL_TRACER
        self.store.executor.tracer = NULL_TRACER
        #: optional remote executor (a ``repro.serve.ServingCluster``);
        #: when set, queries are answered by the cluster instead of the
        #: local store — see :meth:`set_remote_executor`
        self._remote_executor = None
        self.registry = MetricsRegistry()
        self.slow_query_log = SlowQueryLog(
            capacity=self.config.slow_query_log_size,
            threshold_seconds=self.config.slow_query_threshold_seconds,
        )
        if self.config.storage_telemetry:
            from repro.obs.workload_log import WorkloadRecorder

            self._workload_recorder = WorkloadRecorder(
                capacity=self.config.workload_log_size
            )
        else:
            self._workload_recorder = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        trajectories: Iterable[Trajectory],
        config: Optional[TraSSConfig] = None,
        key_encoding: str = INTEGER_KEYS,
    ) -> "TraSS":
        """Create an engine and ingest ``trajectories``."""
        engine = cls(config, key_encoding)
        engine.add_all(trajectories)
        return engine

    def add(self, trajectory: Trajectory) -> int:
        """Index and store one trajectory; returns its index value."""
        return self.store.put(trajectory)

    def add_all(
        self, trajectories: Iterable[Trajectory], sorted_ingest: bool = False
    ) -> int:
        """Bulk ingest; returns the number stored.

        ``sorted_ingest`` key-sorts the batch first (LSM bulk-load
        idiom); the result is identical, the write path cheaper.
        """
        return self.store.put_all(trajectories, sorted_ingest=sorted_ingest)

    def __len__(self) -> int:
        return self.store.trajectory_count

    @property
    def metrics(self) -> IOMetrics:
        return self.store.metrics

    def configure_execution(
        self,
        scan_workers: Optional[int] = None,
        cache_mb: Optional[float] = None,
        plan_cache_size: Optional[int] = None,
        vectorized_filter: Optional[bool] = None,
    ) -> None:
        """Re-tune scan workers / cache tiers / filter mode without
        rebuilding the store (``None`` keeps a knob as configured).
        Used by the CLI's ``--scan-workers`` / ``--cache-mb`` /
        ``--vectorized-filter`` overrides."""
        self.store.configure_execution(
            scan_workers, cache_mb, plan_cache_size, vectorized_filter
        )
        self.config = self.store.config
        # The store rebuilt its executor; keep the active tracer wired.
        self.store.executor.tracer = self._tracer
        if plan_cache_size is not None:
            from repro.kvstore.cache import ObjectLRUCache

            self.pruner.plan_cache = (
                ObjectLRUCache(plan_cache_size) if plan_cache_size > 0 else None
            )

    def _resolve_measure(self, measure: Optional[str]) -> Measure:
        if measure is None:
            return self.measure
        return get_measure(measure)

    # ------------------------------------------------------------------
    # Remote execution (the serving tier)
    # ------------------------------------------------------------------
    def set_remote_executor(self, remote) -> None:
        """Route queries through ``remote`` (a started
        ``repro.serve.ServingCluster``) instead of the local store;
        ``None`` detaches and restores local execution.  Answers are
        bit-identical either way — only the execution substrate moves.
        """
        self._remote_executor = remote

    @property
    def remote_executor(self):
        return self._remote_executor

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    def make_tracer(self) -> Tracer:
        """A tracer on the executor's clock: real monotonic time
        normally, purely virtual time under fault injection — so chaos
        traces are a deterministic function of ``(seed, workload)``."""
        return Tracer(clock=self.store.executor.trace_clock)

    def set_tracer(self, tracer) -> None:
        """Install ``tracer`` on the engine and its executor (``None``
        turns tracing off)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.store.executor.tracer = self._tracer

    @contextmanager
    def traced(self, tracer=None):
        """Run queries under ``tracer`` (a fresh one when omitted),
        restoring the previous tracer afterwards::

            with engine.traced() as tracer:
                engine.threshold_search(q, eps)
            root = tracer.traces()[-1]
        """
        if tracer is None:
            tracer = self.make_tracer()
        previous = self._tracer
        self.set_tracer(tracer)
        try:
            yield tracer
        finally:
            self.set_tracer(previous)

    def _observe_query(
        self,
        kind: str,
        query: Trajectory,
        parameter: float,
        seconds: float,
        result,
        measure: Optional[str] = None,
        io_before: Optional[Dict[str, int]] = None,
        origin: str = "local",
        fanout=None,
    ) -> None:
        """Per-query bookkeeping: latency histogram, query counters,
        the slow-query log, the workload recorder and heat decay.  Pure
        read-model — never touches IOMetrics.  Cluster-routed queries
        pass ``origin="cluster"`` plus the coordinator's per-partition
        fan-out attribution, so slow entries name the shard/replica
        that served (or stalled) them."""
        self.registry.histogram(
            "trass.query.seconds", "query wall time in seconds"
        ).observe(seconds)
        self.registry.counter(
            f"trass.query.{kind}.count", f"{kind} queries answered"
        ).inc()
        self.slow_query_log.observe(
            kind=kind,
            query_tid=query.tid,
            parameter=float(parameter),
            seconds=seconds,
            candidates=result.candidates,
            answers=len(result.answers),
            completeness=result.completeness,
            origin=origin,
            fanout=fanout,
        )
        recorder = self._workload_recorder
        if recorder is not None and recorder.enabled and io_before is not None:
            recorder.record(
                kind=kind,
                query=query,
                parameter=parameter,
                measure=measure,
                seconds=seconds,
                io_delta=self.metrics.diff(io_before),
                result=result,
                generation=self.store.table.generation,
            )
        telemetry = self.storage_telemetry
        if telemetry is not None:
            telemetry.advance_tick()

    def _io_before_query(self) -> Optional[Dict[str, int]]:
        """A pre-query IOMetrics snapshot when the workload recorder
        wants per-query I/O deltas (``None`` otherwise — snapshotting is
        read-only either way, this just skips the copy)."""
        recorder = self._workload_recorder
        if recorder is not None and recorder.enabled:
            return self.metrics.snapshot()
        return None

    @property
    def storage_telemetry(self):
        """The table's storage telemetry sink (``None`` when
        ``config.storage_telemetry`` is off)."""
        return self.store.table.storage_telemetry

    @property
    def workload_recorder(self):
        """The workload capture ring buffer (``None`` when disabled)."""
        return self._workload_recorder

    def doctor(self):
        """Run the tuning advisor; returns ranked
        :class:`~repro.obs.advisor.Recommendation` objects."""
        from repro.obs.advisor import diagnose

        return diagnose(self)

    def replay(self, entries=None):
        """Re-execute the captured workload; returns a
        :class:`~repro.obs.workload_log.ReplayReport`."""
        from repro.obs.workload_log import replay_workload

        return replay_workload(self, entries)

    def explain_analyze(
        self,
        query: Trajectory,
        eps: Optional[float] = None,
        k: Optional[int] = None,
        measure: Optional[str] = None,
    ):
        """Run the query under tracing and return an
        :class:`~repro.obs.explain.ExplainAnalyzeReport` tying every
        phase to its measured counts and durations."""
        from repro.obs.explain import explain_analyze as _explain_analyze

        return _explain_analyze(self, query, eps=eps, k=k, measure=measure)

    def export_metrics(self, fmt: str = "json"):
        """Refresh the metrics registry from current engine state and
        export it (``"json"`` dict or ``"prometheus"`` text).  With a
        remote executor attached, the cluster's aggregated metrics
        (``trass.serve.*`` — per-worker deltas, SLO histograms, rollups)
        land in the same dump, so one scrape describes the cluster."""
        update_registry_from_engine(self.registry, self)
        if self._remote_executor is not None:
            from repro.obs.registry import update_registry_from_cluster

            update_registry_from_cluster(
                self.registry, self._remote_executor
            )
        if fmt == "json":
            return self.registry.to_json()
        if fmt in ("prometheus", "prom", "text"):
            return self.registry.to_prometheus()
        raise QueryError(
            f"unknown metrics format {fmt!r} (use 'json' or 'prometheus')"
        )

    # ------------------------------------------------------------------
    # Fault injection / resilience
    # ------------------------------------------------------------------
    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.kvstore.faults.FaultInjector` to the
        underlying table (``None`` detaches).  Query scans then face the
        injector's schedule and survive it via the resilient executor —
        the entry point of the chaos suite and the ``repro chaos`` CLI.
        """
        self.store.install_fault_injector(injector)

    @property
    def fault_injector(self):
        return self.store.table.fault_injector

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def threshold_search(
        self,
        query: Trajectory,
        eps: float,
        measure: Optional[str] = None,
    ) -> ThresholdSearchResult:
        """All trajectories with ``f(query, T) <= eps`` (Definition 3).

        Measures lacking the Lemma 5 point lower bound (EDR, ERP) cannot
        be index-pruned; they are answered by a verified full scan.
        """
        if self._remote_executor is not None:
            remote = self._remote_executor
            started = time.perf_counter()
            result = remote.threshold_search(query, eps, measure=measure)
            self._observe_query(
                "threshold",
                query,
                eps,
                time.perf_counter() - started,
                result,
                measure=measure,
                origin="cluster",
                fanout=getattr(remote, "last_fanout", None),
            )
            return result
        resolved = self._resolve_measure(measure)
        tracer = self._tracer
        io_before = self._io_before_query()
        started = time.perf_counter()
        with tracer.span(
            "query.threshold", tid=query.tid, eps=eps, measure=resolved.name
        ) as root:
            if not resolved.supports_point_lower_bound:
                result = self._full_scan_threshold(query, eps, resolved)
            else:
                result = threshold_search(
                    self.store, self.pruner, resolved, query, eps, tracer
                )
            root.set_attrs(
                answers=len(result.answers),
                candidates=result.candidates,
                rows_retrieved=result.retrieved_rows,
                completeness=result.completeness,
            )
        self._observe_query(
            "threshold",
            query,
            eps,
            time.perf_counter() - started,
            result,
            measure=resolved.name,
            io_before=io_before,
        )
        return result

    def topk_search(
        self,
        query: Trajectory,
        k: int,
        measure: Optional[str] = None,
    ) -> TopKSearchResult:
        """The ``k`` most similar trajectories (Definition 4).

        Measures lacking the Lemma 5 lower bound fall back to a ranked
        full scan (the index's geometric bounds do not bound them).
        """
        if self._remote_executor is not None:
            remote = self._remote_executor
            started = time.perf_counter()
            result = remote.topk_search(query, k, measure=measure)
            self._observe_query(
                "topk",
                query,
                k,
                time.perf_counter() - started,
                result,
                measure=measure,
                origin="cluster",
                fanout=getattr(remote, "last_fanout", None),
            )
            return result
        resolved = self._resolve_measure(measure)
        tracer = self._tracer
        io_before = self._io_before_query()
        started = time.perf_counter()
        with tracer.span(
            "query.topk", tid=query.tid, k=k, measure=resolved.name
        ) as root:
            if not resolved.supports_point_lower_bound:
                result = self._full_scan_topk(query, k, resolved)
            else:
                result = topk_search(
                    self.store, self.pruner, resolved, query, k, tracer
                )
            root.set_attrs(
                answers=len(result.answers),
                candidates=result.candidates,
                rows_retrieved=result.retrieved_rows,
                completeness=result.completeness,
            )
        self._observe_query(
            "topk",
            query,
            k,
            time.perf_counter() - started,
            result,
            measure=resolved.name,
            io_before=io_before,
        )
        return result

    # ------------------------------------------------------------------
    # Batched queries (shared-scan execution)
    # ------------------------------------------------------------------
    def threshold_search_many(
        self,
        queries: Sequence[Trajectory],
        eps,
        measure: Optional[str] = None,
    ) -> List[ThresholdSearchResult]:
        """Answer many threshold queries over one deduplicated scan.

        ``eps`` is a single threshold for the whole batch or a sequence
        aligned with ``queries``.  The per-query ranges are planned up
        front, coalesced (overlapping or touching byte ranges merge, so
        a shared key region is scanned once), and every scanned row is
        demultiplexed to the queries whose plan covers it.  Results are
        positionally aligned and bit-identical to calling
        :meth:`threshold_search` per query; only the I/O differs —
        ``metrics.batch_ranges_merged`` / ``batch_rows_shared`` say by
        how much.

        Batched queries skip the workload recorder: per-query I/O
        deltas are meaningless under a shared scan.
        """
        if self._remote_executor is not None:
            remote = self._remote_executor
            queries = list(queries)
            try:
                eps_list = [float(e) for e in eps]
            except TypeError:
                eps_list = [float(eps)] * len(queries)
            started = time.perf_counter()
            results = remote.threshold_search_many(
                queries, eps, measure=measure
            )
            per_query = (
                (time.perf_counter() - started) / len(queries)
                if queries
                else 0.0
            )
            for query, eps_value, result in zip(
                queries, eps_list, results
            ):
                self._observe_query(
                    "threshold",
                    query,
                    eps_value,
                    per_query,
                    result,
                    measure=measure,
                    origin="cluster",
                )
            return results
        queries = list(queries)
        try:
            eps_list = [float(e) for e in eps]
        except TypeError:
            eps_list = [float(eps)] * len(queries)
        if len(eps_list) != len(queries):
            raise QueryError(
                f"got {len(queries)} queries but {len(eps_list)} thresholds"
            )
        resolved = self._resolve_measure(measure)
        tracer = self._tracer
        started = time.perf_counter()
        with tracer.span(
            "query.threshold_batch",
            queries=len(queries),
            measure=resolved.name,
        ) as root:
            if not resolved.supports_point_lower_bound:
                # No index pruning, hence no range plans to share.
                results = [
                    self._full_scan_threshold(q, e, resolved)
                    for q, e in zip(queries, eps_list)
                ]
            else:
                from repro.core.batch import threshold_search_many

                results = threshold_search_many(
                    self.store,
                    self.pruner,
                    resolved,
                    queries,
                    eps_list,
                    tracer,
                )
            root.set_attrs(
                answers=sum(len(r.answers) for r in results),
                candidates=sum(r.candidates for r in results),
            )
        elapsed = time.perf_counter() - started
        per_query = elapsed / len(queries) if queries else 0.0
        for query, eps_value, result in zip(queries, eps_list, results):
            self._observe_query(
                "threshold",
                query,
                eps_value,
                per_query,
                result,
                measure=resolved.name,
                io_before=None,
            )
        return results

    def topk_search_many(
        self,
        queries: Sequence[Trajectory],
        k: int,
        measure: Optional[str] = None,
    ) -> List[TopKSearchResult]:
        """Answer many top-k queries; results align with ``queries``.

        Top-k plans adaptively (each answer tightens the working
        threshold), so there is no up-front range set to share — this
        runs the queries one at a time and exists so batch callers can
        stay mode-agnostic.
        """
        if self._remote_executor is not None:
            remote = self._remote_executor
            queries = list(queries)
            started = time.perf_counter()
            results = remote.topk_search_many(queries, k, measure=measure)
            per_query = (
                (time.perf_counter() - started) / len(queries)
                if queries
                else 0.0
            )
            for query, result in zip(queries, results):
                self._observe_query(
                    "topk",
                    query,
                    k,
                    per_query,
                    result,
                    measure=measure,
                    origin="cluster",
                )
            return results
        return [self.topk_search(q, k, measure=measure) for q in queries]

    # ------------------------------------------------------------------
    # Fallbacks for non-prunable measures (Section IX future work)
    # ------------------------------------------------------------------
    def _full_scan_threshold(
        self, query: Trajectory, eps: float, measure: Measure
    ) -> ThresholdSearchResult:
        import time

        from repro.core.pruning import PruningResult

        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
        started = time.perf_counter()
        before = self.metrics.snapshot()
        answers = {}
        candidates = 0
        for record in self.store.all_records():
            candidates += 1
            if measure.within(query.points, record.points, eps):
                answers[record.tid] = measure.distance(
                    query.points, record.points
                )
        retrieved = self.metrics.diff(before)["rows_scanned"]
        elapsed = time.perf_counter() - started
        empty_plan = PruningResult(
            values=[],
            ranges=[],
            min_resolution=0,
            max_resolution=self.config.max_resolution,
        )
        return ThresholdSearchResult(
            answers=answers,
            candidates=candidates,
            retrieved_rows=retrieved,
            pruning=empty_plan,
            pruning_seconds=0.0,
            scan_seconds=elapsed,
            refine_seconds=0.0,
        )

    def _full_scan_topk(
        self, query: Trajectory, k: int, measure: Measure
    ) -> TopKSearchResult:
        import heapq
        import time

        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        before = self.metrics.snapshot()
        heap: List[tuple] = []
        candidates = 0
        for record in self.store.all_records():
            candidates += 1
            dist = measure.distance(query.points, record.points)
            if len(heap) < k:
                heapq.heappush(heap, (-dist, record.tid))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, record.tid))
        retrieved = self.metrics.diff(before)["rows_scanned"]
        return TopKSearchResult(
            answers=sorted((-neg, tid) for neg, tid in heap),
            candidates=candidates,
            retrieved_rows=retrieved,
            units_scanned=1,
            elements_expanded=0,
            total_seconds=time.perf_counter() - started,
        )

    def plan(self, query: Trajectory, eps: float) -> PruningResult:
        """Global pruning only — expose the scan plan for inspection."""
        return self.pruner.prune(query, eps)

    def explain(self, query: Trajectory, eps: float) -> str:
        """A human-readable description of the query plan.

        Shows the resolution band, pruning tallies, the resulting key
        ranges, and how many stored rows fall inside them — the numbers
        a user needs to understand why a query is fast or slow.
        """
        plan = self.pruner.prune(query, eps)
        element, code = self.store.index.place(query)
        rows_covered = sum(
            count
            for value, count in self.store.value_histogram.items()
            if any(r.contains(value) for r in plan.ranges)
        )
        lines = [
            f"threshold search: eps={eps}, measure={self.measure.name}",
            f"query MBR: ({query.mbr.min_x:.6g}, {query.mbr.min_y:.6g}) .. "
            f"({query.mbr.max_x:.6g}, {query.mbr.max_y:.6g})",
            f"query index space: element '{element.sequence_str}' "
            f"(level {element.level}), position code {code}",
            f"resolution band: [{plan.min_resolution}, {plan.max_resolution}]",
            f"elements visited: {plan.elements_visited} "
            f"(distance-pruned: {plan.elements_pruned_distance}, "
            f"collapsed subtrees: {plan.collapsed_subtrees}"
            f"{', TRUNCATED' if plan.truncated else ''})",
            f"position codes pruned: {plan.codes_pruned_far_quad} far-quad, "
            f"{plan.codes_pruned_min_dist} minDistIS",
            f"scan plan: {len(plan.ranges)} key range(s) covering "
            f"{plan.num_index_spaces} index spaces x {self.config.shards} "
            f"shard(s)",
            f"rows inside the plan: {rows_covered} of "
            f"{self.store.trajectory_count}",
        ]
        return "\n".join(lines)

    def range_query(self, window: MBR) -> List[str]:
        """Trajectory ids with at least one point inside ``window``.

        The spatial range query the paper's conclusion notes XZ*
        supports: index-space candidate generation plus an exact
        point-in-window check per retrieved row.
        """
        ranges = self.store.index.range_query_ranges(window)
        tids: List[str] = []
        rows, _ = self.store.executor.scan_ranges(
            self.store.scan_ranges_for(ranges)
        )
        for key, value in rows:
            record = self.store.decode_record(key, value)
            if any(window.contains_point(x, y) for x, y in record.points):
                tids.append(record.tid)
        return sorted(set(tids))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str, compact: bool = False) -> None:
        """Snapshot the engine's store into ``directory`` (plus the
        heatmap + workload log when storage telemetry is on).

        ``compact=True`` writes regions as compressed mmap segments."""
        self.store.save(directory, compact=compact)
        from repro.obs.workload_log import save_observability

        save_observability(self, directory)

    @classmethod
    def load(cls, directory: str) -> "TraSS":
        """Restore an engine from a :meth:`save` snapshot."""
        store = TrajectoryStore.load(directory)
        engine = cls.__new__(cls)
        engine.config = store.config
        engine.store = store
        engine.pruner = GlobalPruner(
            store.index,
            store.config.max_planned_elements,
            plan_cache_size=store.config.plan_cache_size,
            metrics=store.metrics,
            range_merge_gap=store.config.range_merge_gap,
        )
        engine.measure = store.config.make_measure()
        engine._init_observability()
        from repro.obs.workload_log import load_observability

        load_observability(engine, directory)
        return engine

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """A bundle of store-level statistics (used by the benches)."""
        injector = self.fault_injector
        return {
            "trajectories": self.store.trajectory_count,
            "regions": self.store.table.num_regions,
            "distinct_index_values": len(self.store.value_histogram),
            "selectivity": (
                self.store.selectivity() if len(self) else float("nan")
            ),
            "approximate_bytes": self.store.table.approximate_size,
            "io": self.metrics.snapshot(),
            "resilience": {
                "breaker": self.store.executor.breaker.snapshot(),
                "faults": (
                    injector.summary() if injector is not None else None
                ),
            },
            "slow_queries": self.slow_query_log.to_json(),
            "storage": self._storage_stats(),
        }

    def _storage_stats(self) -> Dict[str, object]:
        from repro.obs.storage_stats import collect_storage_stats

        return collect_storage_stats(self)
