"""Threshold similarity search (Definition 3, Algorithm 3).

Plan key ranges with global pruning, scan them with local filtering
pushed into the store, and refine the survivors with the exact
(early-abandoning) measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.executor import ScanReport
from repro.core.local_filter import LocalFilter, LocalFilterRowFilter
from repro.core.pruning import GlobalPruner, PruningResult
from repro.core.storage import TrajectoryRecord, TrajectoryStore
from repro.exceptions import QueryError
from repro.geometry.trajectory import Trajectory
from repro.kvstore.table import ScanRange
from repro.measures.base import Measure


@dataclass
class ThresholdSearchResult:
    """Answers plus the per-phase accounting the paper's plots use."""

    #: tid -> exact similarity distance, for every answer
    answers: Dict[str, float]
    #: trajectories that survived local filtering (pre-refinement)
    candidates: int
    #: rows the store touched inside the scan ranges
    retrieved_rows: int
    pruning: PruningResult
    pruning_seconds: float
    scan_seconds: float
    refine_seconds: float
    #: retry / degraded-mode accounting for the scan phase (None for
    #: paths that bypass the key-value scan, e.g. full-scan fallbacks)
    resilience: Optional[ScanReport] = None

    @property
    def precision(self) -> float:
        """Answers over candidates (Figure 11(c)); 1.0 when no candidates."""
        if self.candidates == 0:
            return 1.0
        return len(self.answers) / self.candidates

    @property
    def total_seconds(self) -> float:
        return self.pruning_seconds + self.scan_seconds + self.refine_seconds

    @property
    def completeness(self) -> float:
        """Fraction of planned key ranges fully scanned (1.0 = every
        answer is present; < 1.0 only in degraded mode under faults)."""
        if self.resilience is None:
            return 1.0
        return self.resilience.completeness

    @property
    def skipped_ranges(self) -> List[ScanRange]:
        """Exactly the key ranges degraded mode left unscanned."""
        if self.resilience is None:
            return []
        return list(self.resilience.skipped_ranges)


def threshold_search(
    store: TrajectoryStore,
    pruner: GlobalPruner,
    measure: Measure,
    query: Trajectory,
    eps: float,
) -> ThresholdSearchResult:
    """Run Algorithm 3 against a trajectory store."""
    if eps < 0:
        raise QueryError(f"threshold must be non-negative, got {eps}")

    started = time.perf_counter()
    pruning = pruner.prune(query, eps)
    scan_ranges = store.scan_ranges_for(pruning.ranges)
    pruning_seconds = time.perf_counter() - started

    local = LocalFilter(
        query,
        measure,
        eps,
        store.config.dp_tolerance,
        box_mode=store.config.box_mode,
    )
    row_filter = LocalFilterRowFilter(local)
    before = store.metrics.snapshot()
    started = time.perf_counter()
    rows, scan_report = store.executor.scan_ranges(scan_ranges, row_filter)
    scan_seconds = time.perf_counter() - started
    retrieved = store.metrics.diff(before)["rows_scanned"]

    started = time.perf_counter()
    answers: Dict[str, float] = {}
    for key, _ in rows:
        record = row_filter.accepted[key]
        if measure.within(query.points, record.points, eps):
            answers[record.tid] = measure.distance(query.points, record.points)
    refine_seconds = time.perf_counter() - started

    return ThresholdSearchResult(
        answers=answers,
        candidates=len(rows),
        retrieved_rows=retrieved,
        pruning=pruning,
        pruning_seconds=pruning_seconds,
        scan_seconds=scan_seconds,
        refine_seconds=refine_seconds,
        resilience=scan_report,
    )
