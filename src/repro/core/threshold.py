"""Threshold similarity search (Definition 3, Algorithm 3).

Plan key ranges with global pruning, scan them with local filtering
pushed into the store, and refine the survivors with the exact
(early-abandoning) measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.executor import ScanReport
from repro.core.local_filter import (
    BatchLocalFilterRowFilter,
    LocalFilter,
    LocalFilterRowFilter,
    LocalFilterStats,
)
from repro.core.pruning import GlobalPruner, PruningResult
from repro.core.storage import TrajectoryRecord, TrajectoryStore
from repro.exceptions import QueryError
from repro.geometry.trajectory import Trajectory
from repro.kvstore.table import ScanRange
from repro.measures.base import Measure
from repro.obs.tracing import NULL_TRACER


@dataclass
class ThresholdSearchResult:
    """Answers plus the per-phase accounting the paper's plots use."""

    #: tid -> exact similarity distance, for every answer
    answers: Dict[str, float]
    #: trajectories that survived local filtering (pre-refinement)
    candidates: int
    #: rows the store touched inside the scan ranges
    retrieved_rows: int
    pruning: PruningResult
    pruning_seconds: float
    scan_seconds: float
    refine_seconds: float
    #: retry / degraded-mode accounting for the scan phase (None for
    #: paths that bypass the key-value scan, e.g. full-scan fallbacks)
    resilience: Optional[ScanReport] = None
    #: per-lemma rejection funnel from local filtering (None for
    #: full-scan fallbacks, which bypass Algorithm 2)
    filter_stats: Optional[LocalFilterStats] = None

    @property
    def precision(self) -> float:
        """Answers over candidates (Figure 11(c)); 1.0 when no candidates."""
        if self.candidates == 0:
            return 1.0
        return len(self.answers) / self.candidates

    @property
    def total_seconds(self) -> float:
        return self.pruning_seconds + self.scan_seconds + self.refine_seconds

    @property
    def completeness(self) -> float:
        """Fraction of planned key ranges fully scanned (1.0 = every
        answer is present; < 1.0 only in degraded mode under faults)."""
        if self.resilience is None:
            return 1.0
        return self.resilience.completeness

    @property
    def skipped_ranges(self) -> List[ScanRange]:
        """Exactly the key ranges degraded mode left unscanned."""
        if self.resilience is None:
            return []
        return list(self.resilience.skipped_ranges)


def make_row_filter(store: TrajectoryStore, local: LocalFilter):
    """The scan-side adapter for one query's local filter.

    ``vectorized_filter`` selects the batch adapter (columnar decode +
    numpy lemma kernels); both adapters make identical accept/reject
    decisions and produce the same counters, so everything downstream
    is mode-agnostic.
    """
    if store.config.vectorized_filter:
        return BatchLocalFilterRowFilter(local, decoder=store.columnar_decoder)
    return LocalFilterRowFilter(local, decoder=store.record_decoder)


def threshold_search(
    store: TrajectoryStore,
    pruner: GlobalPruner,
    measure: Measure,
    query: Trajectory,
    eps: float,
    tracer=None,
) -> ThresholdSearchResult:
    """Run Algorithm 3 against a trajectory store.

    ``tracer`` (a :class:`~repro.obs.tracing.Tracer`) records the
    prune / scan / refine phase spans; refinement is pipelined inside
    the scan, so its span carries the accumulated callback time rather
    than a contiguous interval.
    """
    if eps < 0:
        raise QueryError(f"threshold must be non-negative, got {eps}")
    if tracer is None:
        tracer = NULL_TRACER

    started = time.perf_counter()
    pruning = pruner.prune(query, eps, tracer)
    scan_ranges = store.scan_ranges_for(pruning.ranges)
    pruning_seconds = time.perf_counter() - started

    local = LocalFilter(
        query,
        measure,
        eps,
        store.config.dp_tolerance,
        box_mode=store.config.box_mode,
    )
    local.tracer = tracer
    row_filter = make_row_filter(store, local)

    # Refinement is pipelined with the scan: the executor hands over
    # each completed range's surviving rows (serialised, so no locking
    # here) while other ranges are still scanning.  Answers are a
    # per-record pure function of (query, record, eps), so the answer
    # set is identical to refining after the full scan.  The fused
    # ``distance_within`` computes the decision and the exact distance
    # in one early-abandoning pass.
    answers: Dict[str, float] = {}
    refine_clock = [0.0]
    refined_count = [0]
    abandoned_count = [0]
    query_points = query.points

    def refine(chunk, used_filter) -> None:
        refine_started = time.perf_counter()
        accepted = used_filter.accepted
        for key, _ in chunk:
            record = accepted[key]
            dist = measure.distance_within(query_points, record.points, eps)
            refined_count[0] += 1
            if dist is not None:
                answers[record.tid] = dist
            else:
                abandoned_count[0] += 1
        refine_clock[0] += time.perf_counter() - refine_started

    before = store.metrics.snapshot()
    started = time.perf_counter()
    with tracer.span("scan", ranges=len(scan_ranges)) as scan_span:
        rows, scan_report = store.executor.scan_ranges(
            scan_ranges, row_filter, on_range_rows=refine
        )
    elapsed = time.perf_counter() - started
    retrieved = store.metrics.diff(before)["rows_scanned"]
    # The refine callbacks ran inside the scan wall time; split the
    # accounting so the phase totals still sum to the wall clock.
    refine_seconds = min(refine_clock[0], elapsed)
    scan_seconds = elapsed - refine_seconds

    scan_span.set_attrs(
        rows_retrieved=retrieved,
        candidates=len(rows),
        ranges_completed=scan_report.ranges_completed,
        retries=scan_report.retries,
    )
    # The refine phase has no contiguous interval of its own — it ran
    # interleaved inside the scan — so its span gets the accumulated
    # callback time explicitly.
    with tracer.span("refine") as refine_span:
        refine_span.set_attrs(
            refined=refined_count[0],
            answers=len(answers),
            early_abandoned=abandoned_count[0],
            measure=measure.name,
        )
    refine_span.set_duration(refine_seconds)

    return ThresholdSearchResult(
        answers=answers,
        candidates=len(rows),
        retrieved_rows=retrieved,
        pruning=pruning,
        pruning_seconds=pruning_seconds,
        scan_seconds=scan_seconds,
        refine_seconds=refine_seconds,
        resilience=scan_report,
        filter_stats=local.stats,
    )
