"""Engine configuration.

Defaults follow the paper's evaluation setup (Section VI): the index
space covers the earth, the maximum resolution is 16, the DP tolerance
is 0.01, and the default measure is discrete Fréchet.  ``shards`` is
the salt-bucket count of Section IV-E; the paper finds 8 agreeable on
its five-node cluster (Figure 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import QueryError
from repro.index.bounds import SpaceBounds
from repro.measures.base import Measure, get_measure


@dataclass
class TraSSConfig:
    """Tunable parameters of a TraSS instance."""

    max_resolution: int = 16
    bounds: SpaceBounds = field(default_factory=SpaceBounds.whole_earth)
    shards: int = 8
    dp_tolerance: float = 0.01
    measure_name: str = "frechet"
    #: DP-feature covering-box construction: "chord" (the paper's) or
    #: "min_area" (rotating-calipers rectangles; tighter, costlier)
    box_mode: str = "chord"
    #: planner safety valve: past this many visited elements the global
    #: pruner collapses the remaining frontier into subtree ranges
    max_planned_elements: int = 8192
    #: merge scan ranges separated by at most this many index values
    range_merge_gap: int = 0
    #: region auto-split threshold (rows)
    max_region_rows: int = 100_000
    # ------------------------------------------------------------------
    # Resilient execution (retry / backoff / degraded mode); defaults
    # mask any transient fault the deterministic injector produces
    # (retry_max_attempts > FaultSchedule.max_consecutive_failures).
    # ------------------------------------------------------------------
    #: scan attempts per key range before giving up (1 = no retry)
    retry_max_attempts: int = 4
    #: first backoff delay in seconds (doubles each retry)
    retry_backoff_base: float = 0.01
    #: backoff ceiling in seconds
    retry_backoff_max: float = 1.0
    #: proportional jitter added to each delay (0 = none, 0.25 = +0-25%)
    retry_jitter: float = 0.25
    #: per-query scan time budget in seconds (None = unlimited)
    scan_deadline_seconds: Optional[float] = None
    #: return partial results (with completeness accounting) instead of
    #: raising when a range cannot be scanned
    degraded_mode: bool = False
    #: consecutive per-region failures that open its circuit breaker
    breaker_failure_threshold: int = 5
    #: seconds an open breaker rejects a region before a retry probe
    breaker_cooldown_seconds: float = 30.0
    # ------------------------------------------------------------------
    # Execution performance layer (parallel scans, multi-tier caches)
    # ------------------------------------------------------------------
    #: scan worker threads for multi-range plans (1 = sequential; the
    #: parallel path merges deterministically, so answers and counters
    #: are identical at any setting)
    scan_workers: int = 1
    #: scan-block + decoded-record cache budget in MiB (0 = disabled);
    #: split evenly between the two tiers
    cache_mb: float = 0.0
    #: pruning-plan cache entries (0 = disabled); plans depend only on
    #: (query points, eps, index geometry), so caching is always sound
    plan_cache_size: int = 128
    #: evaluate the local-filter lemmas (5, 12, 13-14) over whole
    #: candidate batches with numpy instead of one record at a time;
    #: the scalar path stays the reference implementation and both make
    #: identical accept/reject decisions (pinned by a property test)
    vectorized_filter: bool = False
    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    #: queries at/above this wall time (seconds) enter the slow-query
    #: log; ``None`` disables slow-query logging
    slow_query_threshold_seconds: Optional[float] = None
    #: capacity of the slow-query ring buffer
    slow_query_log_size: int = 128
    # ------------------------------------------------------------------
    # Storage observability (per-region telemetry, key-space heatmap,
    # workload recorder).  Disabling it must not change any query answer
    # or ``IOMetrics`` total — the telemetry layer never writes to
    # either (the parity test pins that down).
    # ------------------------------------------------------------------
    #: collect per-region scan stats + key-space heat + workload log
    storage_telemetry: bool = True
    #: heatmap resolution: key-range buckets per salt shard
    heatmap_buckets_per_shard: int = 16
    #: heat half-life in recorded queries (<= 0 disables decay)
    heat_decay_queries: float = 512.0
    #: workload recorder ring-buffer capacity (entries)
    workload_log_size: int = 1024

    def __post_init__(self) -> None:
        if self.shards < 1 or self.shards > 256:
            raise QueryError(f"shards must be in 1..256, got {self.shards}")
        if self.dp_tolerance < 0:
            raise QueryError(
                f"dp_tolerance must be non-negative, got {self.dp_tolerance}"
            )
        if self.box_mode not in ("chord", "min_area"):
            raise QueryError(
                f"box_mode must be 'chord' or 'min_area', got {self.box_mode!r}"
            )
        if self.range_merge_gap < 0:
            raise QueryError(
                f"range_merge_gap must be non-negative, got "
                f"{self.range_merge_gap}"
            )
        if self.max_planned_elements < 16:
            raise QueryError(
                "max_planned_elements must be >= 16, got "
                f"{self.max_planned_elements}"
            )
        if self.retry_max_attempts < 1:
            raise QueryError(
                f"retry_max_attempts must be >= 1, got "
                f"{self.retry_max_attempts}"
            )
        if self.retry_backoff_base < 0 or self.retry_backoff_max < 0:
            raise QueryError("retry backoff delays must be non-negative")
        if self.retry_jitter < 0:
            raise QueryError(
                f"retry_jitter must be non-negative, got {self.retry_jitter}"
            )
        if (
            self.scan_deadline_seconds is not None
            and self.scan_deadline_seconds <= 0
        ):
            raise QueryError(
                "scan_deadline_seconds must be positive or None, got "
                f"{self.scan_deadline_seconds}"
            )
        if self.breaker_failure_threshold < 1:
            raise QueryError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise QueryError(
                "breaker_cooldown_seconds must be non-negative, got "
                f"{self.breaker_cooldown_seconds}"
            )
        if self.scan_workers < 1 or self.scan_workers > 64:
            raise QueryError(
                f"scan_workers must be in 1..64, got {self.scan_workers}"
            )
        if self.cache_mb < 0:
            raise QueryError(
                f"cache_mb must be non-negative, got {self.cache_mb}"
            )
        if self.plan_cache_size < 0:
            raise QueryError(
                f"plan_cache_size must be non-negative, got "
                f"{self.plan_cache_size}"
            )
        if (
            self.slow_query_threshold_seconds is not None
            and self.slow_query_threshold_seconds < 0
        ):
            raise QueryError(
                "slow_query_threshold_seconds must be non-negative or "
                f"None, got {self.slow_query_threshold_seconds}"
            )
        if self.slow_query_log_size < 1:
            raise QueryError(
                f"slow_query_log_size must be >= 1, got "
                f"{self.slow_query_log_size}"
            )
        if self.heatmap_buckets_per_shard < 1:
            raise QueryError(
                f"heatmap_buckets_per_shard must be >= 1, got "
                f"{self.heatmap_buckets_per_shard}"
            )
        if self.workload_log_size < 1:
            raise QueryError(
                f"workload_log_size must be >= 1, got "
                f"{self.workload_log_size}"
            )

    def make_measure(self) -> Measure:
        """Instantiate the configured similarity measure."""
        return get_measure(self.measure_name)
