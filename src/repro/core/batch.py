"""Multi-query batch execution with scan sharing.

A batch of threshold queries is planned up front; the per-query key
ranges are then coalesced into one deduplicated scan plan — byte ranges
that overlap or touch are merged, so a row-key region requested by
several queries is scanned exactly once.  Each scanned row is then
demultiplexed to the queries whose plan covers its key, filtered with
that query's own :class:`~repro.core.local_filter.LocalFilter`, and
refined with the exact measure.

Because merging never bridges gaps between ranges, the merged plan
covers exactly the union of the per-query plans: a batch scans at most
— and, whenever plans overlap, strictly fewer than — the total rows the
same queries would scan one at a time.  Per-query answers are a pure
function of ``(query, row, eps)``, so they are bit-identical to
sequential execution; sharing changes only the I/O, which is what
``IOMetrics.batch_ranges_merged`` / ``batch_rows_shared`` account.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import CandidateBatch
from repro.core.executor import ScanReport
from repro.core.local_filter import LocalFilter
from repro.core.threshold import ThresholdSearchResult, threshold_search
from repro.exceptions import QueryError
from repro.geometry.trajectory import Trajectory
from repro.kvstore.table import ScanRange
from repro.measures.base import Measure
from repro.obs.tracing import NULL_TRACER


class _QueryState:
    """Everything one query of the batch carries through the shared scan."""

    __slots__ = (
        "qid",
        "query",
        "eps",
        "pruning",
        "pruning_seconds",
        "local",
        "answers",
        "candidates",
        "delivered_rows",
        "refine_seconds",
    )

    def __init__(self, qid, query, eps, pruning, pruning_seconds, local):
        self.qid = qid
        self.query = query
        self.eps = eps
        self.pruning = pruning
        self.pruning_seconds = pruning_seconds
        self.local = local
        self.answers: Dict[str, float] = {}
        self.candidates = 0
        self.delivered_rows = 0
        self.refine_seconds = 0.0


def _merge_intervals(
    intervals: List[Tuple[bytes, bytes, int]],
) -> List[Tuple[bytes, bytes, List[Tuple[bytes, bytes, int]]]]:
    """Coalesce ``(start, stop, qid)`` byte ranges that overlap or touch.

    Returns ``(start, stop, members)`` per merged range, members being
    the original intervals it absorbed.  Touching counts as mergeable
    (``[a, b) + [b, c) -> [a, c)``) — it adds no extra rows — but gaps
    are never bridged, so the merged plan covers exactly the union of
    the inputs.
    """
    ordered = sorted(intervals, key=lambda iv: (iv[0], iv[1]))
    merged: List[List] = []
    for start, stop, qid in ordered:
        if merged and start <= merged[-1][1]:
            entry = merged[-1]
            if stop > entry[1]:
                entry[1] = stop
            entry[2].append((start, stop, qid))
        else:
            merged.append([start, stop, [(start, stop, qid)]])
    return [(start, stop, members) for start, stop, members in merged]


def _segment_subscribers(
    start: bytes, stop: bytes, members: List[Tuple[bytes, bytes, int]]
) -> List[Tuple[bytes, List[int]]]:
    """Piecewise-constant subscriber lists over one merged range.

    The member intervals tile ``[start, stop)`` (that is what merging
    guarantees); cutting at every member boundary yields segments whose
    subscribing-query set is constant, so the row demux below is a
    single forward walk instead of a per-row membership test.  Returns
    ``(segment_end, qids)`` pairs in key order.
    """
    bounds = sorted({stop} | {m[0] for m in members} | {m[1] for m in members})
    bounds = [b for b in bounds if start < b <= stop]
    segments: List[Tuple[bytes, List[int]]] = []
    seg_start = start
    for seg_end in bounds:
        qids = sorted(
            {q for (s, e, q) in members if s <= seg_start and e >= seg_end}
        )
        segments.append((seg_end, qids))
        seg_start = seg_end
    return segments


def threshold_search_many(
    store,
    pruner,
    measure: Measure,
    queries: Sequence[Trajectory],
    eps_list: Sequence[float],
    tracer=None,
) -> List[ThresholdSearchResult]:
    """Answer a batch of threshold queries over one shared scan.

    Results are positionally aligned with ``queries`` and bit-identical
    to running :func:`~repro.core.threshold.threshold_search` per query
    in the same filter mode; each result's ``retrieved_rows`` counts the
    rows inside *that query's* plan (what it would have scanned alone),
    while the shared :class:`ScanReport` — attached to every result —
    accounts the deduplicated scan that actually ran.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if len(eps_list) != len(queries):
        raise QueryError(
            f"got {len(queries)} queries but {len(eps_list)} thresholds"
        )
    for eps in eps_list:
        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
    if not queries:
        return []

    vectorized = store.config.vectorized_filter
    metrics = store.metrics

    # ------------------------------------------------------------------
    # Plan every query, collect its per-shard byte ranges.
    # ------------------------------------------------------------------
    states: List[_QueryState] = []
    intervals: List[Tuple[bytes, bytes, int]] = []
    planned_ranges = 0
    with tracer.span("batch.plan", queries=len(queries)) as plan_span:
        for qid, (query, eps) in enumerate(zip(queries, eps_list)):
            started = time.perf_counter()
            pruning = pruner.prune(query, eps, tracer)
            scan_ranges = store.scan_ranges_for(pruning.ranges)
            pruning_seconds = time.perf_counter() - started
            local = LocalFilter(
                query,
                measure,
                eps,
                store.config.dp_tolerance,
                box_mode=store.config.box_mode,
            )
            states.append(
                _QueryState(qid, query, eps, pruning, pruning_seconds, local)
            )
            planned_ranges += len(scan_ranges)
            for scan_range in scan_ranges:
                if scan_range.start is None or scan_range.stop is None:
                    # Unbounded ranges do not merge soundly; run the
                    # whole batch sequentially instead (never the case
                    # for the shipped key encodings, purely defensive).
                    return [
                        threshold_search(
                            store, pruner, measure, q, e, tracer
                        )
                        for q, e in zip(queries, eps_list)
                    ]
                intervals.append((scan_range.start, scan_range.stop, qid))

        merged = _merge_intervals(intervals)
        metrics.batch_ranges_merged += planned_ranges - len(merged)
        plan_span.set_attrs(
            ranges_planned=planned_ranges, ranges_merged_plan=len(merged)
        )

    merged_starts = [start for start, _, _ in merged]
    segments_by_range = [
        _segment_subscribers(start, stop, members)
        for start, stop, members in merged
    ]

    # ------------------------------------------------------------------
    # Scan once, demultiplex each chunk to its subscribing queries.
    # ------------------------------------------------------------------
    def demux(chunk, _used_filter) -> None:
        # One callback per completed merged range (retries re-scan the
        # range before the callback fires, so delivery happens exactly
        # once per surviving range).  Under parallel scans the executor
        # serialises callbacks and binds per-thread metrics sinks, so
        # the counter arithmetic below needs no locking.
        sink = store.metrics
        range_idx = bisect_right(merged_starts, chunk[0][0]) - 1
        segments = segments_by_range[range_idx]
        per_query: Dict[int, List[Tuple[bytes, bytes]]] = {}
        deliveries = 0
        seg_idx = 0
        for key, value in chunk:
            while key >= segments[seg_idx][0]:
                seg_idx += 1
            for qid in segments[seg_idx][1]:
                per_query.setdefault(qid, []).append((key, value))
                deliveries += 1
        survivors_total = 0
        for qid, qrows in per_query.items():
            state = states[qid]
            state.delivered_rows += len(qrows)
            refine_started = time.perf_counter()
            if vectorized:
                records = [
                    store.columnar_decoder(key, value) for key, value in qrows
                ]
                mask = state.local.passes_batch(CandidateBatch(records))
                kept = [r for r, ok in zip(records, mask) if ok]
            else:
                kept = []
                for key, value in qrows:
                    record = store.record_decoder(key, value)
                    if state.local.passes(record):
                        kept.append(record)
            survivors_total += len(kept)
            state.candidates += len(kept)
            query_points = state.query.points
            for record in kept:
                dist = measure.distance_within(
                    query_points, record.points, state.eps
                )
                if dist is not None:
                    state.answers[record.tid] = dist
            state.refine_seconds += time.perf_counter() - refine_started
        # Restore the counters the shared scan could not maintain: the
        # scan ran unfiltered (every row counted as returned), but each
        # *delivery* is one local-filter evaluation and only survivors
        # count as returned rows — exactly the aggregate a filtered
        # per-query execution would have recorded.
        sink.batch_rows_shared += deliveries - len(chunk)
        sink.filter_evaluations += deliveries
        sink.filter_rejections += deliveries - survivors_total
        sink.rows_returned += survivors_total - len(chunk)

    scan_report = ScanReport()
    scan_plan = [ScanRange(start, stop) for start, stop, _ in merged]
    before = metrics.snapshot()
    scan_started = time.perf_counter()
    with tracer.span("batch.scan", ranges=len(scan_plan)) as scan_span:
        store.executor.scan_ranges(
            scan_plan, None, report=scan_report, on_range_rows=demux
        )
    wall = time.perf_counter() - scan_started
    rows_scanned = metrics.diff(before)["rows_scanned"]
    scan_span.set_attrs(
        rows_scanned=rows_scanned,
        rows_shared=metrics.diff(before)["batch_rows_shared"],
    )

    # The per-query refine work ran inside the shared scan wall time;
    # apportion what is left of the wall clock evenly as scan time so
    # batch totals still roughly sum to the elapsed wall clock.
    total_refine = sum(s.refine_seconds for s in states)
    scan_share = max(wall - total_refine, 0.0) / len(states)

    return [
        ThresholdSearchResult(
            answers=state.answers,
            candidates=state.candidates,
            retrieved_rows=state.delivered_rows,
            pruning=state.pruning,
            pruning_seconds=state.pruning_seconds,
            scan_seconds=scan_share,
            refine_seconds=state.refine_seconds,
            resilience=scan_report,
            filter_stats=state.local.stats,
        )
        for state in states
    ]


def topk_search_many(
    store,
    pruner,
    measure: Measure,
    queries: Sequence[Trajectory],
    k: int,
    tracer=None,
):
    """Answer a batch of top-k queries (sequentially).

    Top-k's best-first traversal tightens its working threshold as
    answers arrive, so its scan plan is adaptive and per-query — there
    is no up-front range set to coalesce across queries the way
    :func:`threshold_search_many` does.  This wrapper exists for API
    symmetry (and so callers batch-agnostically); it runs the queries
    one at a time and returns positionally aligned results.
    """
    from repro.core.topk import topk_search

    return [
        topk_search(store, pruner, measure, query, k, tracer)
        for query in queries
    ]
