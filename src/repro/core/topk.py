"""Top-k similarity search (Definition 4, Algorithm 4).

Best-first traversal: a priority queue of enlarged elements ordered by
``minDistEE`` feeds a priority queue of scan units ordered by
``minDistIS``; units are materialised (scanned, locally filtered,
refined) in nearest-first order.  Once ``k`` results exist their worst
distance becomes the working threshold ``eps``, which retroactively
prunes both queues — the loop ends when the nearest unexplored unit is
already farther than ``eps`` (Algorithm 4 lines 11-12).

Scan units come in two granularities:

* a single index space ``(element, position code)`` with priority
  ``minDistIS`` (Lemma 11) — used while refining the tree pays off;
* a whole element subtree as one contiguous key range with priority
  ``minDistEE`` (Lemma 9) — used once an element's cell is already
  finer than the working threshold (further splitting cannot prune) or
  the expansion budget is spent.  This is the same collapse the
  encoding's depth-first layout exists to enable.

Both priorities are sound lower bounds on the similarity distance of
every trajectory stored below them and are monotone along the tree, so
nearest-first order never misses a closer trajectory; rows a unit
over-fetches are removed by local filtering and exact refinement, so
the answer set is exact regardless of granularity choices.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.executor import ScanReport
from repro.core.local_filter import LocalFilter, LocalFilterStats
from repro.core.pruning import GlobalPruner, min_points_rect_distance
from repro.core.threshold import make_row_filter
from repro.core.storage import TrajectoryStore
from repro.exceptions import QueryError
from repro.geometry.distance import (
    min_dist_edges_to_rect,
    min_dist_edges_to_rects,
)
from repro.geometry.trajectory import Trajectory
from repro.index.position_code import CODE_QUADS, codes_for_element
from repro.index.quadrant import ROOT, Element
from repro.index.ranges import IndexRange
from repro.measures.base import Measure
from repro.obs.tracing import NULL_TRACER


@dataclass
class TopKSearchResult:
    """The k nearest trajectories plus search accounting."""

    #: (distance, tid) sorted ascending
    answers: List[Tuple[float, str]]
    candidates: int
    retrieved_rows: int
    units_scanned: int
    elements_expanded: int
    total_seconds: float
    #: retry / degraded-mode accounting across every scanned unit
    #: (None for paths that bypass the key-value scan)
    resilience: Optional[ScanReport] = None
    #: per-lemma rejection funnel from local filtering (None for
    #: full-scan fallbacks, which bypass Algorithm 2)
    filter_stats: Optional[LocalFilterStats] = None

    @property
    def worst_distance(self) -> float:
        return self.answers[-1][0] if self.answers else math.inf

    @property
    def completeness(self) -> float:
        """Fraction of planned key ranges fully scanned; < 1.0 means
        the k answers may miss trajectories from skipped ranges."""
        if self.resilience is None:
            return 1.0
        return self.resilience.completeness

    @property
    def skipped_ranges(self) -> List:
        """Exactly the key ranges degraded mode left unscanned."""
        if self.resilience is None:
            return []
        return list(self.resilience.skipped_ranges)


def topk_search(
    store: TrajectoryStore,
    pruner: GlobalPruner,
    measure: Measure,
    query: Trajectory,
    k: int,
    tracer=None,
) -> TopKSearchResult:
    """Run Algorithm 4 against a trajectory store.

    ``tracer`` records one ``topk.unit`` span per materialised scan
    unit (nearest-first order is the trace order) under a ``search``
    span carrying the queue tallies.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if tracer is None:
        tracer = NULL_TRACER
    started = time.perf_counter()

    index = store.index
    bounds = index.bounds
    world_scale = min(bounds.width, bounds.height)
    query_mbr = query.mbr
    query_points = query.points
    qxs = np.fromiter((p[0] for p in query_points), dtype=float)
    qys = np.fromiter((p[1] for p in query_points), dtype=float)
    local = LocalFilter(
        query,
        measure,
        math.inf,
        store.config.dp_tolerance,
        box_mode=store.config.box_mode,
    )
    local.tracer = tracer
    budget = pruner.max_planned_elements
    from repro.index.quadrant import smallest_enlarged_element

    query_see_level = smallest_enlarged_element(
        bounds.normalize_mbr(query_mbr), index.max_resolution
    ).level

    #: max-heap of (-distance, tid); worst answer on top
    results: List[Tuple[float, str]] = []
    seen_tids: Dict[str, float] = {}

    def current_eps() -> float:
        return -results[0][0] if len(results) >= k else math.inf

    # Element queue (EQ) and scan-unit queue (IQ); the tiebreak counter
    # keeps heap comparisons away from non-comparable payloads.
    eq: List[Tuple[float, int, Element]] = []
    iq: List[Tuple[float, int, IndexRange]] = []
    tick = 0

    def push_element(element: Element) -> float:
        nonlocal tick
        dist = min_dist_edges_to_rect(query_mbr, index.element_world_mbr(element))
        heapq.heappush(eq, (dist, tick, element))
        tick += 1
        return dist

    push_element(ROOT)
    elements_expanded = 0
    units_scanned = 0
    candidates = 0
    retrieved = 0

    def push_subtree_unit(element: Element, dist: float) -> None:
        """One contiguous range covering the element's whole subtree."""
        nonlocal tick
        if element.level == 0:
            # The root's subtree is the entire main block plus its own
            # tail-block codes.
            heapq.heappush(
                iq, (dist, tick, IndexRange(0, index.total_index_spaces))
            )
        else:
            heapq.heappush(
                iq, (dist, tick, IndexRange(*index.subtree_span(element)))
            )
        tick += 1

    def expand_element(element: Element, element_dist: float) -> None:
        """Emit the element's surviving index spaces and either descend
        or collapse the subtree into a single scan unit."""
        nonlocal tick, elements_expanded
        elements_expanded += 1
        threshold = current_eps()
        emit_codes = True
        max_level = index.max_resolution
        if math.isfinite(threshold):
            # Lemmas 6-7: elements outside the resolution band hold no
            # answers — too-shallow ones still need descending, but
            # their own codes are skipped; too-deep ones stop here.
            min_r, max_r = pruner.resolution_band(query, threshold)
            if element.level > max_r:
                return
            emit_codes = element.level >= min_r
            max_level = min(max_level, max_r)

        can_descend = element.level < max_level
        cell_world = element.cell_width * world_scale
        if math.isfinite(threshold):
            # Splitting below the threshold's own scale cannot prune.
            refine_pays = cell_world > threshold
        else:
            # No threshold yet: refine down to the query's own element
            # size so nearby subtrees materialise quickly and seed eps.
            refine_pays = element.level < query_see_level
        if elements_expanded >= budget:
            refine_pays = False
        if can_descend and not refine_pays:
            # Collapse: the subtree becomes one contiguous scan.
            push_subtree_unit(element, element_dist)
            return

        if emit_codes:
            quad_rects = index.quad_world_rects(element)
            far_quads = {
                quad
                for quad, rect in quad_rects.items()
                if min_points_rect_distance(qxs, qys, rect) > threshold
            }
            for code in codes_for_element(element, index.max_resolution):
                quads = CODE_QUADS[code]
                if quads & far_quads:
                    continue
                rects = [quad_rects[q] for q in quads]
                dist = min_dist_edges_to_rects(query_mbr, rects)
                if dist > threshold:
                    continue
                value = index.value(element, code)
                heapq.heappush(iq, (dist, tick, IndexRange(value, value + 1)))
                tick += 1
        if can_descend:
            for child in element.children():
                push_element(child)

    scan_report = ScanReport()
    deadline = store.executor.deadline_from_now()

    q_start, q_end = query_points[0], query_points[-1]
    use_start_end = measure.supports_start_end_filter

    def refine_lower_bound(record) -> float:
        """A cheap sound lower bound on ``f(query, record)`` — the MBR
        gap (Lemma 5) sharpened with the start/end distances (Lemma 12)
        for order-aware measures.  Refining a unit's survivors in this
        order tightens the working threshold as fast as possible, so
        later (farther) candidates abandon early or skip refinement."""
        p = record.points
        bound = query_mbr.distance_to_rect(record.features.mbr)
        if use_start_end:
            start = math.hypot(q_start[0] - p[0][0], q_start[1] - p[0][1])
            end = math.hypot(q_end[0] - p[-1][0], q_end[1] - p[-1][1])
            if start > bound:
                bound = start
            if end > bound:
                bound = end
        return bound

    def materialise(unit: IndexRange) -> None:
        """Scan one unit, filter locally, refine survivors.

        Each range's survivors are refined nearest-first (by
        :func:`refine_lower_bound`) with the fused early-abandoning
        ``distance_within`` at the current working threshold: a
        candidate that cannot beat the k-th answer is dropped without
        an exact distance, and each accepted answer shrinks the bound
        for the rest of the batch.

        The per-range scans run under the resilient executor; a retry
        after a mid-range transient fault re-streams the range — the
        batch of a failed attempt is discarded unrefined and the
        ``seen_tids`` check makes any re-refinement a no-op, so answers
        stay exact under masked faults.
        """
        nonlocal candidates, retrieved, units_scanned
        units_scanned += 1
        local.set_threshold(current_eps())
        # The mode-appropriate adapter: the batch variant decodes each
        # chunk columnar-once and its accepted records are views over
        # those arrays, so refinement below reuses the batch decode
        # instead of re-decoding per record.
        row_filter = make_row_filter(store, local)
        before = store.metrics.snapshot()
        candidates_before = candidates

        def consume(scan_range) -> None:
            nonlocal candidates
            batch = []
            for key, _ in store.executor.scan_chunk(scan_range, row_filter):
                candidates += 1
                record = row_filter.accepted.pop(bytes(key))
                if record.tid in seen_tids:
                    continue
                batch.append(record)
            if not batch:
                return
            batch.sort(key=refine_lower_bound)
            for record in batch:
                if record.tid in seen_tids:
                    continue
                dist = measure.distance_within(
                    query_points, record.points, current_eps()
                )
                # Abandoned candidates are provably worse than the k-th
                # answer; mark them seen so a re-scan skips them.
                seen_tids[record.tid] = math.inf if dist is None else dist
                if dist is None:
                    continue
                if len(results) < k:
                    heapq.heappush(results, (-dist, record.tid))
                elif dist < -results[0][0]:
                    heapq.heapreplace(results, (-dist, record.tid))
            local.set_threshold(current_eps())

        with tracer.span(
            "topk.unit", start=unit.start, stop=unit.stop
        ) as unit_span:
            store.executor.execute(
                store.scan_ranges_for([unit]),
                consume,
                report=scan_report,
                deadline=deadline,
            )
            unit_rows = store.metrics.diff(before)["rows_scanned"]
            retrieved += unit_rows
            unit_span.set_attrs(
                rows=unit_rows,
                candidates=candidates - candidates_before,
                answers=len(results),
            )

    with tracer.span("search", k=k) as search_span:
        while eq or iq:
            if scan_report.deadline_exceeded:
                break  # budget spent; completeness accounting says how much
            eps = current_eps()
            eq_top = eq[0][0] if eq else math.inf
            iq_top = iq[0][0] if iq else math.inf
            if min(eq_top, iq_top) > eps:
                break  # nothing unexplored can beat the current k-th answer
            if iq_top <= eq_top:
                _, _, unit = heapq.heappop(iq)
                materialise(unit)
            else:
                dist, _, element = heapq.heappop(eq)
                expand_element(element, dist)
        search_span.set_attrs(
            units_scanned=units_scanned,
            elements_expanded=elements_expanded,
            candidates=candidates,
            rows_retrieved=retrieved,
        )

    answers = sorted((-neg, tid) for neg, tid in results)
    return TopKSearchResult(
        answers=answers,
        candidates=candidates,
        retrieved_rows=retrieved,
        units_scanned=units_scanned,
        elements_expanded=elements_expanded,
        total_seconds=time.perf_counter() - started,
        resilience=scan_report,
        filter_stats=local.stats,
    )
