"""Trajectory similarity join.

``similarity_join(engine, eps)`` finds every unordered pair of stored
trajectories within ``eps`` of each other — the companion operation to
the paper's searches (DITA's headline feature, listed in the paper's
related work section).

The implementation is index-driven and exact: each stored trajectory
runs one globally-pruned, locally-filtered threshold search (Algorithm
3), and pair deduplication keeps every unordered pair exactly once.
Each search touches only the index spaces compatible with its probe, so
the join cost follows data density rather than ``n^2``; the per-pair
exactness guarantees are precisely those of ``threshold_search``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.engine import TraSS
from repro.exceptions import QueryError


@dataclass
class JoinResult:
    """All similar pairs plus accounting."""

    #: {(tid_a, tid_b): distance} with tid_a < tid_b
    pairs: Dict[Tuple[str, str], float]
    #: trajectories that survived local filtering across all probes
    candidate_pairs: int
    #: rows scanned across all probes
    rows_scanned: int
    total_seconds: float


def similarity_join(engine: TraSS, eps: float) -> JoinResult:
    """Exact similarity self-join of everything stored in ``engine``."""
    if eps < 0:
        raise QueryError(f"threshold must be non-negative, got {eps}")
    started = time.perf_counter()

    pairs: Dict[Tuple[str, str], float] = {}
    candidate_pairs = 0
    rows_scanned = 0
    for record in engine.store.all_records():
        probe = record.as_trajectory()
        result = engine.threshold_search(probe, eps)
        candidate_pairs += max(0, result.candidates - 1)  # minus self
        rows_scanned += result.retrieved_rows
        for tid, dist in result.answers.items():
            if tid == record.tid:
                continue
            key = (record.tid, tid) if record.tid < tid else (tid, record.tid)
            pairs.setdefault(key, dist)

    return JoinResult(
        pairs=pairs,
        candidate_pairs=candidate_pairs,
        rows_scanned=rows_scanned,
        total_seconds=time.perf_counter() - started,
    )
