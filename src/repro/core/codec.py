"""Row-value serialisation for the trajectory table (Table I).

A stored row carries everything query processing needs without a second
lookup: the raw points (``points`` column), the Douglas-Peucker
representative indexes (``dp-points``) and the covering boxes
(``dp-mbrs``).  The layout is a single binary blob:

    u32 n_points | n_points * 2 f64   raw points
    u32 n_rep    | n_rep * u32        DP representative indexes
    u32 n_boxes  | n_boxes * 8 f64    oriented boxes
    u16 tid_len  | tid bytes          trajectory id (also in the key;
                                      kept in the value so a row is
                                      self-describing)

All numbers are big-endian for consistency with the row-key encoding.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.exceptions import KVStoreError
from repro.features.dp_features import DPFeatures
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.segment import OrientedBox

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_BOX = struct.Struct(">8d")

#: numpy dtype strings mirroring the blob layout, shared with the
#: columnar decoder (``repro.core.columnar``) so the scalar and
#: vectorised decoders read the same bytes the same way
COUNT_DTYPE = ">u4"
TID_LEN_DTYPE = ">u2"
FLOAT_DTYPE = ">f8"
REP_INDEX_DTYPE = ">u4"
#: floats per serialised oriented box: (anchor.x, anchor.y, axis.x,
#: axis.y, length, lo_along, lo_perp, hi_perp)
BOX_FIELDS = 8

PointTuple = Tuple[float, float]


def _pack_box(box: OrientedBox) -> bytes:
    return _BOX.pack(
        box.anchor.x,
        box.anchor.y,
        box.axis[0],
        box.axis[1],
        box.length,
        box.lo_along,
        box.lo_perp,
        box.hi_perp,
    )


def _unpack_box(data: bytes, offset: int) -> OrientedBox:
    ax, ay, ux, uy, length, lo_a, lo_p, hi_p = _BOX.unpack_from(data, offset)
    return OrientedBox(Point(ax, ay), (ux, uy), length, lo_a, lo_p, hi_p)


def encode_row(
    tid: str,
    points: Sequence[PointTuple],
    features: DPFeatures,
) -> bytes:
    """Serialise one trajectory row value."""
    if not points:
        raise KVStoreError(f"trajectory {tid!r} has no points")
    parts: List[bytes] = [_U32.pack(len(points))]
    parts.append(
        struct.pack(f">{2 * len(points)}d", *(c for p in points for c in p))
    )
    parts.append(_U32.pack(len(features.rep_indexes)))
    if features.rep_indexes:
        parts.append(
            struct.pack(f">{len(features.rep_indexes)}I", *features.rep_indexes)
        )
    parts.append(_U32.pack(len(features.boxes)))
    for box in features.boxes:
        parts.append(_pack_box(box))
    tid_bytes = tid.encode("utf-8")
    parts.append(_U16.pack(len(tid_bytes)))
    parts.append(tid_bytes)
    return b"".join(parts)


def decode_row(data: bytes) -> Tuple[str, List[PointTuple], DPFeatures]:
    """Inverse of :func:`encode_row` -> (tid, points, features)."""
    try:
        offset = 0
        (n_points,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        flat = struct.unpack_from(f">{2 * n_points}d", data, offset)
        offset += 16 * n_points
        points = [(flat[2 * i], flat[2 * i + 1]) for i in range(n_points)]
        (n_rep,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        rep = struct.unpack_from(f">{n_rep}I", data, offset) if n_rep else ()
        offset += 4 * n_rep
        (n_boxes,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        boxes = []
        for _ in range(n_boxes):
            boxes.append(_unpack_box(data, offset))
            offset += _BOX.size
        (tid_len,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        tid = data[offset : offset + tid_len].decode("utf-8")
        offset += tid_len
    except (struct.error, UnicodeDecodeError) as exc:
        raise KVStoreError(f"corrupt trajectory row: {exc}") from exc
    if offset != len(data):
        raise KVStoreError(
            f"trailing bytes in trajectory row ({len(data) - offset})"
        )
    features = DPFeatures(
        rep_indexes=tuple(rep),
        rep_points=tuple(points[i] for i in rep),
        boxes=tuple(boxes),
        mbr=MBR.of_points(points),
    )
    return tid, points, features
