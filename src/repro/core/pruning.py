"""Global pruning (Section V-C, Algorithm 1).

The pruner walks the XZ* quad hierarchy top-down and keeps only index
spaces that could hold a trajectory within ``eps`` of the query:

* resolution band (Definitions 8-9, Lemmas 6-7): elements shallower
  than ``MinR`` cannot hold similar trajectories (they would occupy two
  sub-quads wider than the extended query), and elements deeper than
  ``MaxR`` are too small for any placement to stay within ``eps`` of
  every query-MBR edge;
* element distance (Lemmas 8-9): the enlarged element must intersect
  ``Ext(Q.MBR, eps)``, and ``minDistEE`` — a sound lower bound on the
  similarity of everything stored inside — must not exceed ``eps``.
  Both tests are monotone along the tree, so failing subtrees are cut;
* position codes (Lemmas 10-11): sub-quads farther than ``eps`` from
  the query's points kill every code containing them, and the surviving
  codes are checked with ``minDistIS``.

The survivors are merged into contiguous index-value ranges (the
encoding is depth-first precisely so this merge is productive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.geometry.distance import (
    min_dist_edges_to_rect,
    min_dist_edges_to_rects,
    rect_polyline_distance,
)
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.position_code import CODE_QUADS, codes_for_element
from repro.index.quadrant import ROOT, Element, smallest_enlarged_element
from repro.index.ranges import IndexRange, merge_ranges, merge_values_to_ranges
from repro.index.xzstar import XZStarIndex
from repro.obs.tracing import NULL_TRACER


def min_points_rect_distance(
    xs: "np.ndarray", ys: "np.ndarray", rect: MBR
) -> float:
    """``min_p d(p, rect)`` over a vectorised point set.

    The Lemma 10 kernel: the smallest distance any query point has to a
    sub-quad.  Vectorised because the planner evaluates it four times
    per visited element.
    """
    dx = np.maximum(np.maximum(rect.min_x - xs, xs - rect.max_x), 0.0)
    dy = np.maximum(np.maximum(rect.min_y - ys, ys - rect.max_y), 0.0)
    return float(np.sqrt(np.min(dx * dx + dy * dy)))


@dataclass
class PruningResult:
    """Output of one global-pruning pass."""

    values: List[int]
    ranges: List[IndexRange]
    min_resolution: int
    max_resolution: int
    elements_visited: int = 0
    elements_pruned_distance: int = 0
    codes_pruned_far_quad: int = 0
    codes_pruned_min_dist: int = 0
    collapsed_subtrees: int = 0
    truncated: bool = False

    @property
    def num_index_spaces(self) -> int:
        return sum(len(r) for r in self.ranges)


class GlobalPruner:
    """Plans the index-value ranges for one query (Algorithm 1)."""

    def __init__(
        self,
        index: XZStarIndex,
        max_planned_elements: int = 8192,
        collapse_scale: float = 0.25,
        use_position_codes: bool = True,
        plan_cache_size: int = 0,
        metrics=None,
        range_merge_gap: int = 0,
    ):
        self.index = index
        self.max_planned_elements = max_planned_elements
        # Coalesce scan ranges separated by at most this many index
        # values.  Bridged values are a sound superset (extra rows die
        # in local filtering); the payoff is fewer range seeks.
        self.range_merge_gap = range_merge_gap
        # Plan cache: a pruning plan is a pure function of the query's
        # points, the threshold and the index geometry — nothing about
        # the stored data enters Algorithm 1 — so cached plans stay
        # sound across ingests.  Keys carry the exact point tuple (the
        # position-code lemmas read the points, so an MBR-quantised key
        # alone would be unsound) plus eps and the resolution band.
        from repro.kvstore.cache import ObjectLRUCache

        self.plan_cache = (
            ObjectLRUCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        #: optional IOMetrics receiving plan_cache_hits / _misses
        self.metrics = metrics
        # Ablation switch: with position codes off, every legal code of
        # a surviving element is accepted (Lemmas 10-11 disabled) — the
        # element-level pruning of plain XZ-Ordering, on XZ* layout.
        self.use_position_codes = use_position_codes
        # Once an element's cell is below collapse_scale * eps, the
        # geometry inside it is finer than the query tolerance and
        # position codes cannot prune much: the whole subtree collapses
        # into one contiguous scan (sound superset; extra rows die in
        # local filtering).  This keeps the frontier proportional to
        # (query size / eps)^2 instead of (query size / finest cell)^2.
        self.collapse_scale = collapse_scale

    # ------------------------------------------------------------------
    def resolution_band(self, query: Trajectory, eps: float) -> Tuple[int, int]:
        """``(MinR, MaxR)`` for the query (Definitions 8-9).

        ``MinR`` is the resolution of ``SEE(Ext(Q.MBR, eps))``.  ``MaxR``
        is the deepest resolution whose enlarged elements are still big
        enough that a centred placement keeps ``d0`` and ``d1`` within
        ``eps`` (Lemma 7); when the query MBR is smaller than ``2*eps``
        no depth is too deep and ``MaxR`` is the index maximum.
        """
        bounds = self.index.bounds
        ext = bounds.normalize_mbr(query.mbr.expanded(eps))
        min_r = smallest_enlarged_element(ext, self.index.max_resolution).level

        norm_mbr = bounds.normalize_mbr(query.mbr)
        eps_norm = eps / min(bounds.width, bounds.height)
        need = max(norm_mbr.width, norm_mbr.height) - 2.0 * eps_norm
        if need <= 0:
            max_r = self.index.max_resolution
        else:
            # Enlarged width at level l is 2 * 2^-l; require >= need.
            max_r = int(math.floor(math.log2(2.0 / need)))
            max_r = max(0, min(self.index.max_resolution, max_r))
        return min_r, max_r

    # ------------------------------------------------------------------
    def prune(
        self, query: Trajectory, eps: float, tracer=None
    ) -> PruningResult:
        """Run Algorithm 1: candidate index values for ``(query, eps)``.

        With a plan cache attached, a repeated ``(query, eps)`` returns
        the previously computed :class:`PruningResult` (treat it as
        read-only) and skips the tree walk entirely.  ``tracer`` (a
        :class:`~repro.obs.tracing.Tracer`) records a ``prune`` span
        with the hierarchy-walk and range-merge tallies.
        """
        if tracer is None:
            tracer = NULL_TRACER
        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
        with tracer.span("prune", eps=eps) as span:
            cache = self.plan_cache
            cache_key = None
            if cache is not None:
                band = self.resolution_band(query, eps)
                cache_key = (
                    query.points,
                    eps,
                    band,
                    self.use_position_codes,
                    self.range_merge_gap,
                )
                cached = cache.get(cache_key)
                if cached is not None:
                    if self.metrics is not None:
                        self.metrics.plan_cache_hits += 1
                    span.set_attr("plan_cache", "hit")
                    self._trace_plan(span, cached)
                    return cached
                if self.metrics is not None:
                    self.metrics.plan_cache_misses += 1
            result = self._prune_uncached(query, eps, tracer)
            if cache is not None:
                cache.put(cache_key, result)
            span.set_attr(
                "plan_cache", "miss" if cache is not None else "off"
            )
            self._trace_plan(span, result)
        return result

    @staticmethod
    def _trace_plan(span, result: PruningResult) -> None:
        span.set_attrs(
            min_resolution=result.min_resolution,
            max_resolution=result.max_resolution,
            elements_visited=result.elements_visited,
            elements_pruned_distance=result.elements_pruned_distance,
            codes_pruned_far_quad=result.codes_pruned_far_quad,
            codes_pruned_min_dist=result.codes_pruned_min_dist,
            collapsed_subtrees=result.collapsed_subtrees,
            truncated=result.truncated,
            key_ranges=len(result.ranges),
            index_spaces=result.num_index_spaces,
        )

    def _prune_uncached(
        self, query: Trajectory, eps: float, tracer=NULL_TRACER
    ) -> PruningResult:
        min_r, max_r = self.resolution_band(query, eps)
        result = PruningResult(
            values=[], ranges=[], min_resolution=min_r, max_resolution=max_r
        )
        if min_r > max_r:
            # Degenerate band: no element size is compatible.  This can
            # only happen through normalisation rounding; fall back to
            # the widest sound band.
            min_r = 0
            max_r = self.index.max_resolution

        ext_world = query.mbr.expanded(eps)
        query_mbr = query.mbr
        xs = np.fromiter((p[0] for p in query.points), dtype=float)
        ys = np.fromiter((p[1] for p in query.points), dtype=float)
        bounds = self.index.bounds
        world_scale = min(bounds.width, bounds.height)
        collapse_cell = self.collapse_scale * eps

        subtree_ranges: List[IndexRange] = []
        stack: List[Element] = [ROOT]
        with tracer.span("prune.walk") as walk_span:
            while stack:
                element = stack.pop()
                result.elements_visited += 1
                ee_world = self.index.element_world_mbr(element)
                # Lemma 8: the enlarged element must meet the extended MBR.
                if not ee_world.intersects(ext_world):
                    result.elements_pruned_distance += 1
                    continue
                # Lemma 9: minDistEE is monotone down the tree.
                if min_dist_edges_to_rect(query_mbr, ee_world) > eps:
                    result.elements_pruned_distance += 1
                    continue
                if result.elements_visited > self.max_planned_elements:
                    # Safety valve: accept the remaining subtree wholesale.
                    # A superset of index spaces is sound — extra rows are
                    # removed by local filtering and refinement.
                    result.truncated = True
                    if element.level >= 1:
                        subtree_ranges.append(
                            IndexRange(*self.index.subtree_span(element))
                        )
                    continue
                if (
                    element.level >= max(min_r, 1)
                    and element.level < max_r
                    and element.cell_width * world_scale <= collapse_cell
                ):
                    subtree_ranges.append(
                        IndexRange(*self.index.subtree_span(element))
                    )
                    result.collapsed_subtrees += 1
                    continue
                if element.level >= min_r:
                    self._select_codes(element, xs, ys, query_mbr, eps, result)
                if element.level < max_r:
                    stack.extend(element.children())
        walk_span.set_attrs(
            elements_visited=result.elements_visited,
            elements_pruned_distance=result.elements_pruned_distance,
            codes_pruned_far_quad=result.codes_pruned_far_quad,
            codes_pruned_min_dist=result.codes_pruned_min_dist,
            collapsed_subtrees=result.collapsed_subtrees,
        )

        with tracer.span("prune.ranges") as merge_span:
            gap = self.range_merge_gap
            value_ranges = merge_values_to_ranges(result.values, gap)
            result.ranges = merge_ranges(value_ranges + subtree_ranges)
            merged_away = 0
            if gap > 0:
                # How many seeks the gap bridging saved on this plan.
                exact = merge_ranges(
                    merge_values_to_ranges(result.values) + subtree_ranges
                )
                merged_away = len(exact) - len(result.ranges)
                if self.metrics is not None:
                    self.metrics.ranges_merged += merged_away
            merge_span.set_attrs(
                values=len(result.values),
                subtree_ranges=len(subtree_ranges),
                key_ranges=len(result.ranges),
                ranges_merged=merged_away,
            )
        return result

    # ------------------------------------------------------------------
    def _select_codes(
        self,
        element: Element,
        xs: "np.ndarray",
        ys: "np.ndarray",
        query_mbr: MBR,
        eps: float,
        result: PruningResult,
    ) -> None:
        """Lemmas 10-11 on one candidate enlarged element."""
        if not self.use_position_codes:
            for code in codes_for_element(element, self.index.max_resolution):
                result.values.append(self.index.value(element, code))
            return
        quad_rects = self.index.quad_world_rects(element)
        far_quads = {
            quad
            for quad, rect in quad_rects.items()
            if min_points_rect_distance(xs, ys, rect) > eps
        }
        for code in codes_for_element(element, self.index.max_resolution):
            quads = CODE_QUADS[code]
            if quads & far_quads:
                result.codes_pruned_far_quad += 1
                continue
            rects = [quad_rects[q] for q in quads]
            if min_dist_edges_to_rects(query_mbr, rects) > eps:
                result.codes_pruned_min_dist += 1
                continue
            result.values.append(self.index.value(element, code))
