"""Local filtering (Section V-D, Algorithm 2).

Runs per retrieved trajectory, inside the scan ("pushed down into the
coprocessor", Figure 8), ordered cheap-to-expensive exactly as the
paper prescribes ("we execute Lemmas from simple to complex"):

1. MBR gap — if the two MBRs are more than ``eps`` apart no point of
   ``T`` can be within ``eps`` of any point of ``Q`` (Lemma 5);
2. start/end points (Lemma 12) — Fréchet and DTW must match first with
   first and last with last; *skipped for Hausdorff*;
3. representative points against the other side's box union, both
   directions (Lemma 13);
4. box edges against the other side's box union, both directions
   (Lemma 14).

The threshold is mutable so the top-k search can tighten it as results
accumulate (Algorithm 4 line 17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.codec import decode_row
from repro.core.storage import TrajectoryRecord
from repro.exceptions import QueryError
from repro.features.dp_features import DPFeatures, extract_dp_features
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.kvstore.filters import RowFilter
from repro.measures.base import Measure
from repro.obs.tracing import NULL_TRACER


@dataclass
class LocalFilterStats:
    """Per-query tallies of which lemma removed how much."""

    evaluated: int = 0
    rejected_mbr: int = 0
    rejected_start_end: int = 0
    rejected_rep_points: int = 0
    rejected_boxes: int = 0
    passed: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_mbr
            + self.rejected_start_end
            + self.rejected_rep_points
            + self.rejected_boxes
        )

    def merge_from(self, other: "LocalFilterStats") -> None:
        """Fold a parallel worker's tallies into this bundle."""
        self.evaluated += other.evaluated
        self.rejected_mbr += other.rejected_mbr
        self.rejected_start_end += other.rejected_start_end
        self.rejected_rep_points += other.rejected_rep_points
        self.rejected_boxes += other.rejected_boxes
        self.passed += other.passed

    def as_dict(self) -> Dict[str, int]:
        return {
            "evaluated": self.evaluated,
            "rejected_mbr": self.rejected_mbr,
            "rejected_start_end": self.rejected_start_end,
            "rejected_rep_points": self.rejected_rep_points,
            "rejected_boxes": self.rejected_boxes,
            "rejected": self.rejected,
            "passed": self.passed,
        }


class LocalFilter:
    """The Algorithm 2 predicate for one query."""

    #: every filtering stage, in execution order
    ALL_STAGES = frozenset({"mbr", "start_end", "rep_points", "boxes"})
    #: Lemma 14 cost cap: beyond this many edge/box pairs the stage is
    #: skipped in favour of the exact (early-abandoning) measure
    MAX_BOX_PAIRS = 2500

    def __init__(
        self,
        query: Trajectory,
        measure: Measure,
        eps: float,
        dp_tolerance: float,
        stages: Optional[frozenset] = None,
        box_mode: str = "chord",
    ):
        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
        if stages is not None and not set(stages) <= self.ALL_STAGES:
            raise QueryError(
                f"unknown filter stages {set(stages) - self.ALL_STAGES}"
            )
        self.query = query
        self.measure = measure
        self.eps = eps
        self.features = extract_dp_features(
            query.points, dp_tolerance, box_mode=box_mode
        )
        self.stats = LocalFilterStats()
        #: ablation switch: which lemma stages run (default: all)
        self.stages = self.ALL_STAGES if stages is None else frozenset(stages)
        #: span-event sink; shared by :meth:`spawn` clones so worker
        #: events land on the worker's active scan span
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def set_threshold(self, eps: float) -> None:
        """Tighten (or set) the working threshold; used by top-k."""
        self.eps = eps

    def spawn(self) -> "LocalFilter":
        """A clone for one parallel scan worker: shares the (immutable)
        query features, counts into a private stats bundle."""
        import copy

        clone = copy.copy(self)
        clone.stats = LocalFilterStats()
        return clone

    def absorb(self, worker: "LocalFilter") -> None:
        self.stats.merge_from(worker.stats)

    # ------------------------------------------------------------------
    def passes(self, record: TrajectoryRecord) -> bool:
        """True when the record survives every lemma at the current
        threshold and must go on to exact refinement."""
        self.stats.evaluated += 1
        tracer = self.tracer if self.tracer.enabled else None
        eps = self.eps
        if eps == math.inf:
            self.stats.passed += 1
            if tracer is not None:
                tracer.add_event("filter.pass", tid=record.tid)
            return True
        query = self.query
        features = record.features

        # Step 0 — MBR gap (Lemma 5 applied to the bounding boxes).
        if "mbr" in self.stages and query.mbr.distance_to_rect(features.mbr) > eps:
            self.stats.rejected_mbr += 1
            if tracer is not None:
                tracer.add_event("filter.reject", lemma="mbr", tid=record.tid)
            return False

        # Step 1 — Lemma 12, start and end points (order-aware measures).
        if "start_end" in self.stages and self.measure.supports_start_end_filter:
            q_start, q_end = query.points[0], query.points[-1]
            t_start, t_end = record.points[0], record.points[-1]
            if (
                math.hypot(q_start[0] - t_start[0], q_start[1] - t_start[1]) > eps
                or math.hypot(q_end[0] - t_end[0], q_end[1] - t_end[1]) > eps
            ):
                self.stats.rejected_start_end += 1
                if tracer is not None:
                    tracer.add_event(
                        "filter.reject", lemma="start_end", tid=record.tid
                    )
                return False

        # Step 2 — Lemma 13 in both directions: a representative point
        # is a raw point, so its distance to the other side's box union
        # lower-bounds the similarity distance.
        q_features = self.features
        if "rep_points" in self.stages:
            for px, py in features.rep_points:
                if q_features.point_exceeds_boxes(px, py, eps):
                    self.stats.rejected_rep_points += 1
                    if tracer is not None:
                        tracer.add_event(
                            "filter.reject", lemma="rep_points", tid=record.tid
                        )
                    return False
            for px, py in q_features.rep_points:
                if features.point_exceeds_boxes(px, py, eps):
                    self.stats.rejected_rep_points += 1
                    if tracer is not None:
                        tracer.add_event(
                            "filter.reject", lemma="rep_points", tid=record.tid
                        )
                    return False

        # Step 3 — Lemma 14 in both directions: every box edge carries a
        # raw point of its side.  The stage is quadratic in box counts,
        # so it is skipped for feature pairs where its cost would rival
        # the exact measure it exists to avoid (sound: skipping a filter
        # only admits more candidates).
        if (
            "boxes" in self.stages
            and len(features.boxes) * len(q_features.boxes)
            <= self.MAX_BOX_PAIRS
        ):
            if features.exceeds_box_bound(
                q_features, eps
            ) or q_features.exceeds_box_bound(features, eps):
                self.stats.rejected_boxes += 1
                if tracer is not None:
                    tracer.add_event(
                        "filter.reject", lemma="boxes", tid=record.tid
                    )
                return False

        self.stats.passed += 1
        if tracer is not None:
            tracer.add_event("filter.pass", tid=record.tid)
        return True


class LocalFilterRowFilter(RowFilter):
    """Server-side adapter: decode the row, apply :class:`LocalFilter`.

    Accepted records are cached by row key so the client does not pay
    for a second decode of rows it is about to refine.  ``decoder``
    replaces the plain ``decode_row`` call — the store passes its
    record-cache-backed decoder here, so repeated scans of the same
    rows skip decoding entirely.
    """

    def __init__(
        self,
        local_filter: LocalFilter,
        decoder: Optional[Callable[[bytes, bytes], TrajectoryRecord]] = None,
    ):
        self.local_filter = local_filter
        self.decoder = decoder
        self.accepted: Dict[bytes, TrajectoryRecord] = {}

    def accept(self, key: bytes, value: bytes) -> bool:
        if self.decoder is not None:
            record = self.decoder(key, value)
        else:
            tid, points, features = decode_row(value)
            record = TrajectoryRecord(tid, tuple(points), features, -1)
        if self.local_filter.passes(record):
            self.accepted[bytes(key)] = record
            return True
        return False

    def spawn(self) -> "LocalFilterRowFilter":
        return LocalFilterRowFilter(self.local_filter.spawn(), self.decoder)

    def absorb(self, worker: "RowFilter") -> None:
        if worker is self:
            return
        self.accepted.update(worker.accepted)
        self.local_filter.absorb(worker.local_filter)
