"""Local filtering (Section V-D, Algorithm 2).

Runs per retrieved trajectory, inside the scan ("pushed down into the
coprocessor", Figure 8), ordered cheap-to-expensive exactly as the
paper prescribes ("we execute Lemmas from simple to complex"):

1. MBR gap — if the two MBRs are more than ``eps`` apart no point of
   ``T`` can be within ``eps`` of any point of ``Q`` (Lemma 5);
2. start/end points (Lemma 12) — Fréchet and DTW must match first with
   first and last with last; *skipped for Hausdorff*;
3. representative points against the other side's box union, both
   directions (Lemma 13);
4. box edges against the other side's box union, both directions
   (Lemma 14).

The threshold is mutable so the top-k search can tighten it as results
accumulate (Algorithm 4 line 17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.codec import decode_row
from repro.core.columnar import CandidateBatch, ColumnarRecord, decode_row_columnar
from repro.core.storage import TrajectoryRecord
from repro.exceptions import QueryError
from repro.features.dp_features import (
    DPFeatures,
    extract_dp_features,
    pack_boxes,
    pack_rects,
    points_within_box_union,
)
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.kvstore.filters import RowFilter
from repro.measures.base import Measure
from repro.obs.tracing import NULL_TRACER


@dataclass
class LocalFilterStats:
    """Per-query tallies of which lemma removed how much."""

    evaluated: int = 0
    rejected_mbr: int = 0
    rejected_start_end: int = 0
    rejected_rep_points: int = 0
    rejected_boxes: int = 0
    passed: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_mbr
            + self.rejected_start_end
            + self.rejected_rep_points
            + self.rejected_boxes
        )

    def merge_from(self, other: "LocalFilterStats") -> None:
        """Fold a parallel worker's tallies into this bundle."""
        self.evaluated += other.evaluated
        self.rejected_mbr += other.rejected_mbr
        self.rejected_start_end += other.rejected_start_end
        self.rejected_rep_points += other.rejected_rep_points
        self.rejected_boxes += other.rejected_boxes
        self.passed += other.passed

    def as_dict(self) -> Dict[str, int]:
        return {
            "evaluated": self.evaluated,
            "rejected_mbr": self.rejected_mbr,
            "rejected_start_end": self.rejected_start_end,
            "rejected_rep_points": self.rejected_rep_points,
            "rejected_boxes": self.rejected_boxes,
            "rejected": self.rejected,
            "passed": self.passed,
        }


class LocalFilter:
    """The Algorithm 2 predicate for one query."""

    #: every filtering stage, in execution order
    ALL_STAGES = frozenset({"mbr", "start_end", "rep_points", "boxes"})
    #: Lemma 14 cost cap: beyond this many edge/box pairs the stage is
    #: skipped in favour of the exact (early-abandoning) measure
    MAX_BOX_PAIRS = 2500

    def __init__(
        self,
        query: Trajectory,
        measure: Measure,
        eps: float,
        dp_tolerance: float,
        stages: Optional[frozenset] = None,
        box_mode: str = "chord",
    ):
        if eps < 0:
            raise QueryError(f"threshold must be non-negative, got {eps}")
        if stages is not None and not set(stages) <= self.ALL_STAGES:
            raise QueryError(
                f"unknown filter stages {set(stages) - self.ALL_STAGES}"
            )
        self.query = query
        self.measure = measure
        self.eps = eps
        self.features = extract_dp_features(
            query.points, dp_tolerance, box_mode=box_mode
        )
        self.stats = LocalFilterStats()
        #: ablation switch: which lemma stages run (default: all)
        self.stages = self.ALL_STAGES if stages is None else frozenset(stages)
        #: span-event sink; shared by :meth:`spawn` clones so worker
        #: events land on the worker's active scan span
        self.tracer = NULL_TRACER
        #: packed query-side arrays for :meth:`passes_batch`, built on
        #: first use and shared by :meth:`spawn` clones (immutable)
        self._query_arrays: Optional[tuple] = None

    # ------------------------------------------------------------------
    def set_threshold(self, eps: float) -> None:
        """Tighten (or set) the working threshold; used by top-k."""
        self.eps = eps

    def spawn(self) -> "LocalFilter":
        """A clone for one parallel scan worker: shares the (immutable)
        query features, counts into a private stats bundle."""
        import copy

        clone = copy.copy(self)
        clone.stats = LocalFilterStats()
        return clone

    def absorb(self, worker: "LocalFilter") -> None:
        self.stats.merge_from(worker.stats)

    # ------------------------------------------------------------------
    def passes(self, record: TrajectoryRecord) -> bool:
        """True when the record survives every lemma at the current
        threshold and must go on to exact refinement."""
        self.stats.evaluated += 1
        tracer = self.tracer if self.tracer.enabled else None
        eps = self.eps
        if eps == math.inf:
            self.stats.passed += 1
            if tracer is not None:
                tracer.add_event("filter.pass", tid=record.tid)
            return True
        query = self.query
        features = record.features

        # Step 0 — MBR gap (Lemma 5 applied to the bounding boxes).
        if "mbr" in self.stages and query.mbr.distance_to_rect(features.mbr) > eps:
            self.stats.rejected_mbr += 1
            if tracer is not None:
                tracer.add_event("filter.reject", lemma="mbr", tid=record.tid)
            return False

        # Step 1 — Lemma 12, start and end points (order-aware measures).
        if "start_end" in self.stages and self.measure.supports_start_end_filter:
            q_start, q_end = query.points[0], query.points[-1]
            t_start, t_end = record.points[0], record.points[-1]
            if (
                math.hypot(q_start[0] - t_start[0], q_start[1] - t_start[1]) > eps
                or math.hypot(q_end[0] - t_end[0], q_end[1] - t_end[1]) > eps
            ):
                self.stats.rejected_start_end += 1
                if tracer is not None:
                    tracer.add_event(
                        "filter.reject", lemma="start_end", tid=record.tid
                    )
                return False

        # Step 2 — Lemma 13 in both directions: a representative point
        # is a raw point, so its distance to the other side's box union
        # lower-bounds the similarity distance.
        q_features = self.features
        if "rep_points" in self.stages:
            for px, py in features.rep_points:
                if q_features.point_exceeds_boxes(px, py, eps):
                    self.stats.rejected_rep_points += 1
                    if tracer is not None:
                        tracer.add_event(
                            "filter.reject", lemma="rep_points", tid=record.tid
                        )
                    return False
            for px, py in q_features.rep_points:
                if features.point_exceeds_boxes(px, py, eps):
                    self.stats.rejected_rep_points += 1
                    if tracer is not None:
                        tracer.add_event(
                            "filter.reject", lemma="rep_points", tid=record.tid
                        )
                    return False

        # Step 3 — Lemma 14 in both directions: every box edge carries a
        # raw point of its side.  The stage is quadratic in box counts,
        # so it is skipped for feature pairs where its cost would rival
        # the exact measure it exists to avoid (sound: skipping a filter
        # only admits more candidates).
        if (
            "boxes" in self.stages
            and len(features.boxes) * len(q_features.boxes)
            <= self.MAX_BOX_PAIRS
        ):
            if features.exceeds_box_bound(
                q_features, eps
            ) or q_features.exceeds_box_bound(features, eps):
                self.stats.rejected_boxes += 1
                if tracer is not None:
                    tracer.add_event(
                        "filter.reject", lemma="boxes", tid=record.tid
                    )
                return False

        self.stats.passed += 1
        if tracer is not None:
            tracer.add_event("filter.pass", tid=record.tid)
        return True

    # ------------------------------------------------------------------
    # Vectorised path
    # ------------------------------------------------------------------
    def _query_side(self) -> tuple:
        """Packed query geometry: (start, end, mbr row, rep points,
        box params, box envelopes)."""
        qa = self._query_arrays
        if qa is None:
            q = self.query
            f = self.features
            qa = (
                np.asarray(q.points[0], dtype=np.float64),
                np.asarray(q.points[-1], dtype=np.float64),
                q.mbr,
                np.array(f.rep_points, dtype=np.float64).reshape(-1, 2),
                pack_boxes(f.boxes),
                pack_rects(f.envelopes),
            )
            self._query_arrays = qa
        return qa

    def passes_batch(self, batch: CandidateBatch) -> np.ndarray:
        """Vectorised :meth:`passes` over a whole candidate batch.

        Returns a boolean survivor mask.  The lemma stages run in the
        same cheap-to-expensive order over the batch, each one only
        charged against candidates still alive, so the per-lemma
        :class:`LocalFilterStats` tallies — and the accept/reject
        decisions — are identical to running :meth:`passes` per record.
        Lemma 14's rotated edge-against-box-union test stays the exact
        scalar kernel, applied to the (small) set of candidates the
        vectorised lemmas could not decide.
        """
        n = batch.size
        stats = self.stats
        stats.evaluated += n
        tracer = self.tracer if self.tracer.enabled else None
        eps = self.eps
        if n == 0:
            return np.zeros(0, dtype=bool)
        if eps == math.inf:
            stats.passed += n
            if tracer is not None:
                for rec in batch.records:
                    tracer.add_event("filter.pass", tid=rec.tid)
            return np.ones(n, dtype=bool)

        alive = np.ones(n, dtype=bool)
        rejections: List[Tuple[str, np.ndarray]] = []

        def reject(lemma: str, mask: np.ndarray) -> int:
            rej = alive & mask
            count = int(rej.sum())
            if count:
                alive[rej] = False
                if tracer is not None:
                    rejections.append((lemma, np.flatnonzero(rej)))
            return count

        # Step 0 — MBR gap (Lemma 5), the scalar
        # ``query.mbr.distance_to_rect(features.mbr)`` broadcast.
        if "mbr" in self.stages:
            qm = self.query.mbr
            mbrs = batch.mbrs
            dx = np.maximum(
                np.maximum(mbrs[:, 0] - qm.max_x, 0.0), qm.min_x - mbrs[:, 2]
            )
            dy = np.maximum(
                np.maximum(mbrs[:, 1] - qm.max_y, 0.0), qm.min_y - mbrs[:, 3]
            )
            stats.rejected_mbr += reject("mbr", np.hypot(dx, dy) > eps)

        # Step 1 — Lemma 12, start and end points.
        if (
            "start_end" in self.stages
            and self.measure.supports_start_end_filter
            and alive.any()
        ):
            q_start, q_end, _, _, _, _ = self._query_side()
            ds = np.hypot(
                q_start[0] - batch.starts[:, 0], q_start[1] - batch.starts[:, 1]
            )
            de = np.hypot(
                q_end[0] - batch.ends[:, 0], q_end[1] - batch.ends[:, 1]
            )
            stats.rejected_start_end += reject(
                "start_end", (ds > eps) | (de > eps)
            )

        # Step 2 — Lemma 13 in both directions.  A candidate is rejected
        # when any of its representative points exceeds the query's box
        # union, or any query representative point exceeds the
        # candidate's.
        if "rep_points" in self.stages and alive.any():
            _, _, _, q_rep, q_boxes, q_envs = self._query_side()
            sel = alive[batch.rep_cand_ids]
            rep_pts = batch.rep_points[sel]
            rep_ids = batch.rep_cand_ids[sel]
            rej13 = np.zeros(n, dtype=bool)
            if len(rep_pts):
                if len(q_boxes):
                    within = points_within_box_union(
                        rep_pts, q_boxes, q_envs, eps
                    )
                    exceeds_pt = ~within.any(axis=1)
                else:
                    exceeds_pt = np.ones(len(rep_pts), dtype=bool)
                rej13 |= (
                    np.bincount(rep_ids[exceeds_pt], minlength=n) > 0
                )
            if len(q_rep):
                if len(batch.box_params):
                    within2 = points_within_box_union(
                        q_rep, batch.box_params, batch.box_envelopes, eps
                    )
                    # Per query point, any-over-each-candidate's-boxes by
                    # ragged prefix sums (robust to zero-box records).
                    cs = np.concatenate(
                        [
                            np.zeros((len(q_rep), 1), dtype=np.int64),
                            np.cumsum(within2, axis=1, dtype=np.int64),
                        ],
                        axis=1,
                    )
                    ends = batch.box_offsets + batch.box_counts
                    per = cs[:, ends] - cs[:, batch.box_offsets]  # (r, n)
                    rej13 |= (per == 0).any(axis=0)
                else:
                    rej13 |= batch.box_counts == 0
            stats.rejected_rep_points += reject("rep_points", rej13)

        # Step 3 — Lemma 14, both directions: the exact rotated
        # segment-against-box-union kernel on the candidates the cheap
        # lemmas kept, under the same cost cap.
        if "boxes" in self.stages and alive.any():
            q_features = self.features
            n_q_boxes = len(q_features.boxes)
            capped = batch.box_counts * n_q_boxes <= self.MAX_BOX_PAIRS
            rej14 = np.zeros(n, dtype=bool)
            for i in np.flatnonzero(alive & capped):
                feats = batch.records[i].features
                if feats.exceeds_box_bound(
                    q_features, eps
                ) or q_features.exceeds_box_bound(feats, eps):
                    rej14[i] = True
            stats.rejected_boxes += reject("boxes", rej14)

        stats.passed += int(alive.sum())
        if tracer is not None:
            lemma_of = {}
            for lemma, idxs in rejections:
                for i in idxs:
                    lemma_of[int(i)] = lemma
            for i, rec in enumerate(batch.records):
                lemma = lemma_of.get(i)
                if lemma is None:
                    tracer.add_event("filter.pass", tid=rec.tid)
                else:
                    tracer.add_event(
                        "filter.reject", lemma=lemma, tid=rec.tid
                    )
        return alive


class LocalFilterRowFilter(RowFilter):
    """Server-side adapter: decode the row, apply :class:`LocalFilter`.

    Accepted records are cached by row key so the client does not pay
    for a second decode of rows it is about to refine.  ``decoder``
    replaces the plain ``decode_row`` call — the store passes its
    record-cache-backed decoder here, so repeated scans of the same
    rows skip decoding entirely.
    """

    def __init__(
        self,
        local_filter: LocalFilter,
        decoder: Optional[Callable[[bytes, bytes], TrajectoryRecord]] = None,
    ):
        self.local_filter = local_filter
        self.decoder = decoder
        self.accepted: Dict[bytes, TrajectoryRecord] = {}

    def accept(self, key: bytes, value: bytes) -> bool:
        if self.decoder is not None:
            record = self.decoder(key, value)
        else:
            tid, points, features = decode_row(value)
            record = TrajectoryRecord(tid, tuple(points), features, -1)
        if self.local_filter.passes(record):
            self.accepted[bytes(key)] = record
            return True
        return False

    def spawn(self) -> "LocalFilterRowFilter":
        return LocalFilterRowFilter(self.local_filter.spawn(), self.decoder)

    def absorb(self, worker: "RowFilter") -> None:
        if worker is self:
            return
        self.accepted.update(worker.accepted)
        self.local_filter.absorb(worker.local_filter)


class BatchLocalFilterRowFilter(RowFilter):
    """Batch sibling of :class:`LocalFilterRowFilter`.

    Marked ``batch = True`` so the executor's chunk helper scans the
    range unfiltered, decodes the chunk columnar-once, and lets
    :meth:`accept_batch` evaluate the lemmas over the whole batch with
    numpy (the executor restores the per-row filter counters the
    pushdown path would have produced).  ``decoder`` is the store's
    columnar-cache-backed decoder; accepted records are cached by row
    key as :class:`TrajectoryRecord` views over the columnar arrays, so
    refinement reuses the same decode.
    """

    #: tells the executor to deliver whole chunks to :meth:`accept_batch`
    batch = True

    def __init__(
        self,
        local_filter: LocalFilter,
        decoder: Optional[Callable[[bytes, bytes], ColumnarRecord]] = None,
    ):
        self.local_filter = local_filter
        self.decoder = decoder
        self.accepted: Dict[bytes, TrajectoryRecord] = {}

    def _decode(self, key: bytes, value: bytes) -> ColumnarRecord:
        if self.decoder is not None:
            return self.decoder(key, value)
        return decode_row_columnar(value)

    def accept(self, key: bytes, value: bytes) -> bool:
        """Single-row fallback (a one-record batch); the scan path uses
        :meth:`accept_batch`."""
        return bool(self.accept_batch([(key, value)]))

    def accept_batch(self, rows):
        """Filter a chunk; returns the surviving ``(key, value)`` rows."""
        if not rows:
            return []
        records = [self._decode(key, value) for key, value in rows]
        mask = self.local_filter.passes_batch(CandidateBatch(records))
        kept = []
        for i in np.flatnonzero(mask):
            key, value = rows[i]
            self.accepted[bytes(key)] = records[i].as_record()
            kept.append(rows[i])
        return kept

    def spawn(self) -> "BatchLocalFilterRowFilter":
        return BatchLocalFilterRowFilter(self.local_filter.spawn(), self.decoder)

    def absorb(self, worker: "RowFilter") -> None:
        if worker is self:
            return
        self.accepted.update(worker.accepted)
        self.local_filter.absorb(worker.local_filter)
