"""TraSS core: storage schema, pruning, and the two similarity searches.

The flow mirrors Figure 8 of the paper: trajectories are indexed with
XZ* and written to the key-value table together with their DP features
(:mod:`storage`); a query runs global pruning (:mod:`pruning`,
Algorithm 1) to plan key-range scans, pushes local filtering
(:mod:`local_filter`, Algorithm 2) into the scan, and finally refines
the survivors with the exact measure (:mod:`threshold`, Algorithm 3 and
:mod:`topk`, Algorithm 4).  :class:`repro.core.engine.TraSS` is the
public facade.
"""

from repro.core.config import TraSSConfig
from repro.core.executor import (
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
    ScanReport,
)
from repro.core.storage import TrajectoryRecord, TrajectoryStore
from repro.core.pruning import GlobalPruner, PruningResult
from repro.core.local_filter import LocalFilter
from repro.core.threshold import ThresholdSearchResult
from repro.core.topk import TopKSearchResult
from repro.core.engine import TraSS

__all__ = [
    "TraSSConfig",
    "CircuitBreaker",
    "ResilientExecutor",
    "RetryPolicy",
    "ScanReport",
    "TrajectoryRecord",
    "TrajectoryStore",
    "GlobalPruner",
    "PruningResult",
    "LocalFilter",
    "ThresholdSearchResult",
    "TopKSearchResult",
    "TraSS",
]
