"""Query workload sampling.

The paper's protocol: "we randomly pick 400 query trajectories from
each dataset ... and take the median processing time as the final
results" (Section VI).  ``sample_queries`` reproduces the sampling;
the median/percentile aggregation lives in :mod:`repro.bench.harness`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory


def sample_queries(
    trajectories: Sequence[Trajectory],
    count: int,
    seed: int = 0,
    min_points: int = 2,
) -> List[Trajectory]:
    """Pick ``count`` query trajectories uniformly at random.

    Trajectories with fewer than ``min_points`` points are excluded so
    degenerate queries (single pings) do not dominate the sample unless
    explicitly requested.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    eligible = [t for t in trajectories if len(t) >= min_points]
    if not eligible:
        raise ReproError(
            f"no trajectories with >= {min_points} points to sample from"
        )
    rng = random.Random(seed)
    if count >= len(eligible):
        return list(eligible)
    return rng.sample(eligible, count)
