"""Named dataset configurations for tests, examples and benches.

Each dataset bundles the trajectories with the space bounds a TraSS
instance should use for it.  Sizes default to bench-friendly values and
scale up via the ``size`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.data.generators import (
    LORRY_BOUNDS,
    TDRIVE_BOUNDS,
    lorry_like,
    tdrive_like,
)
from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds


@dataclass(frozen=True)
class Dataset:
    """A named trajectory collection plus its index bounds."""

    name: str
    bounds: SpaceBounds
    trajectories: Tuple[Trajectory, ...]

    def __len__(self) -> int:
        return len(self.trajectories)


_BUILDERS: Dict[str, Callable[[int, int], Tuple[SpaceBounds, List[Trajectory]]]] = {
    "tdrive": lambda size, seed: (TDRIVE_BOUNDS, tdrive_like(size, seed)),
    "lorry": lambda size, seed: (LORRY_BOUNDS, lorry_like(size, seed)),
}


def dataset_names() -> Tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def load_dataset(name: str, size: int = 2000, seed: int = 0) -> Dataset:
    """Build a named dataset deterministically."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    bounds, trajectories = builder(size, seed)
    return Dataset(name, bounds, tuple(trajectories))
