"""Datasets and workloads.

The paper evaluates on two real datasets — T-Drive (taxis, Beijing) and
Lorry (JD logistics, China-wide) — and five synthetic scalings of
Lorry.  Neither real dataset ships here, so :mod:`generators` produces
seeded synthetic stand-ins that preserve the properties the paper's
analysis depends on (spatial extent, heavy-tailed trip lengths, the
stationary-taxi artefact), :mod:`datasets` names the standard
configurations, :mod:`workload` samples query sets, and :mod:`io`
round-trips trajectories through CSV.
"""

from repro.data.generators import (
    tdrive_like,
    lorry_like,
    random_walks,
    scaled,
    TDRIVE_BOUNDS,
    LORRY_BOUNDS,
)
from repro.data.datasets import load_dataset, dataset_names
from repro.data.workload import sample_queries
from repro.data.io import save_csv, load_csv
from repro.data.noise import jitter, downsample, add_outliers, duplicate_pings
from repro.data.segmentation import split_by_gap, split_by_dwell, segment_stream

__all__ = [
    "tdrive_like",
    "lorry_like",
    "random_walks",
    "scaled",
    "TDRIVE_BOUNDS",
    "LORRY_BOUNDS",
    "load_dataset",
    "dataset_names",
    "sample_queries",
    "save_csv",
    "load_csv",
    "jitter",
    "downsample",
    "add_outliers",
    "duplicate_pings",
    "split_by_gap",
    "split_by_dwell",
    "segment_stream",
]
