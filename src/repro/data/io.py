"""Trajectory CSV round trip.

Format: one point per line, ``tid,x,y``; points of a trajectory must be
consecutive and in order (the layout both T-Drive and typical GPS log
exports use after grouping).
"""

from __future__ import annotations

import csv
from typing import Iterable, List

from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory


def save_csv(path: str, trajectories: Iterable[Trajectory]) -> int:
    """Write trajectories; returns the number of point rows written."""
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["tid", "x", "y"])
        for trajectory in trajectories:
            for x, y in trajectory.points:
                writer.writerow([trajectory.tid, repr(x), repr(y)])
                rows += 1
    return rows


def load_csv(path: str) -> List[Trajectory]:
    """Read trajectories written by :func:`save_csv`."""
    out: List[Trajectory] = []
    current_tid = None
    current_points: List[tuple] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["tid", "x", "y"]:
            raise ReproError(f"unexpected CSV header {header!r} in {path}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ReproError(f"malformed row at {path}:{lineno}: {row!r}")
            tid, xs, ys = row
            try:
                point = (float(xs), float(ys))
            except ValueError:
                raise ReproError(
                    f"non-numeric coordinates at {path}:{lineno}: {row!r}"
                ) from None
            if tid != current_tid:
                if current_tid is not None:
                    out.append(Trajectory(current_tid, current_points))
                current_tid = tid
                current_points = []
            current_points.append(point)
    if current_tid is not None:
        out.append(Trajectory(current_tid, current_points))
    return out
