"""Trajectory corruption utilities.

Real GPS data is noisy: jittered fixes, dropped points, outlier spikes,
duplicated pings.  These helpers apply controlled corruption so tests
and benches can check how the pipeline behaves on imperfect inputs —
similarity search results should degrade *gracefully* (answers change
because distances change) and never *incorrectly* (index and filters
must stay exact for whatever points they are given).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory

PointTuple = Tuple[float, float]


def jitter(
    trajectory: Trajectory,
    sigma: float,
    seed: int = 0,
    tid: Optional[str] = None,
) -> Trajectory:
    """Gaussian positional noise on every point."""
    if sigma < 0:
        raise ReproError(f"sigma must be non-negative, got {sigma}")
    rng = random.Random(seed)
    return Trajectory(
        tid if tid is not None else f"{trajectory.tid}_jit",
        [
            (x + rng.gauss(0.0, sigma), y + rng.gauss(0.0, sigma))
            for x, y in trajectory.points
        ],
    )


def downsample(
    trajectory: Trajectory,
    keep_fraction: float,
    seed: int = 0,
    tid: Optional[str] = None,
) -> Trajectory:
    """Randomly drop points, always keeping the endpoints."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ReproError(
            f"keep fraction must be in (0, 1], got {keep_fraction}"
        )
    rng = random.Random(seed)
    points = trajectory.points
    kept: List[PointTuple] = [points[0]]
    for point in points[1:-1]:
        if rng.random() < keep_fraction:
            kept.append(point)
    if len(points) > 1:
        kept.append(points[-1])
    return Trajectory(
        tid if tid is not None else f"{trajectory.tid}_ds", kept
    )


def add_outliers(
    trajectory: Trajectory,
    count: int,
    magnitude: float,
    seed: int = 0,
    tid: Optional[str] = None,
) -> Trajectory:
    """Displace ``count`` random interior points by ``magnitude``.

    Models multipath GPS spikes; ``count`` is clamped to the number of
    interior points.
    """
    if count < 0:
        raise ReproError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    points = list(trajectory.points)
    interior = list(range(1, len(points) - 1))
    rng.shuffle(interior)
    for index in interior[: min(count, len(interior))]:
        angle = rng.uniform(0.0, 6.283185307179586)
        import math

        points[index] = (
            points[index][0] + magnitude * math.cos(angle),
            points[index][1] + magnitude * math.sin(angle),
        )
    return Trajectory(
        tid if tid is not None else f"{trajectory.tid}_out", points
    )


def duplicate_pings(
    trajectory: Trajectory,
    fraction: float,
    seed: int = 0,
    tid: Optional[str] = None,
) -> Trajectory:
    """Repeat a fraction of points in place (stuck-GPS artefact)."""
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    points: List[PointTuple] = []
    for point in trajectory.points:
        points.append(point)
        if rng.random() < fraction:
            points.append(point)
    return Trajectory(
        tid if tid is not None else f"{trajectory.tid}_dup", points
    )
