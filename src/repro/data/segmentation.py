"""GPS stream segmentation — turning raw pings into trips.

Real trajectory pipelines receive one long ping stream per vehicle and
must split it into trips before indexing.  Two standard detectors are
implemented:

* **gap splitting** — a jump larger than ``max_gap`` between
  consecutive pings starts a new trip (signal loss, ferry, tunnel);
* **dwell splitting** — a run of ``min_dwell_points`` pings inside a
  ``dwell_radius`` disc ends a trip (the vehicle parked); the dwell
  itself becomes a stationary trajectory, which is exactly the
  population behind the paper's Figure 12(a) max-resolution spike.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory

PointTuple = Tuple[float, float]


def split_by_gap(
    tid: str,
    points: Sequence[PointTuple],
    max_gap: float,
    min_points: int = 2,
) -> List[Trajectory]:
    """Split a ping stream wherever consecutive pings jump too far.

    Segments shorter than ``min_points`` are dropped (noise).  Trip ids
    are ``{tid}_t{n}``.
    """
    if max_gap <= 0:
        raise ReproError(f"max_gap must be positive, got {max_gap}")
    if not points:
        return []
    segments: List[List[PointTuple]] = [[points[0]]]
    for prev, cur in zip(points, points[1:]):
        if math.hypot(cur[0] - prev[0], cur[1] - prev[1]) > max_gap:
            segments.append([cur])
        else:
            segments[-1].append(cur)
    return [
        Trajectory(f"{tid}_t{i}", seg)
        for i, seg in enumerate(segments)
        if len(seg) >= min_points
    ]


def split_by_dwell(
    tid: str,
    points: Sequence[PointTuple],
    dwell_radius: float,
    min_dwell_points: int = 5,
    min_points: int = 2,
) -> Tuple[List[Trajectory], List[Trajectory]]:
    """Split a stream at dwells; returns ``(trips, dwells)``.

    A dwell is a maximal run of at least ``min_dwell_points`` pings all
    within ``dwell_radius`` of the run's first ping.  Pings in a dwell
    become a stationary trajectory (``{tid}_d{n}``); the moving spans
    between dwells become trips (``{tid}_t{n}``).
    """
    if dwell_radius <= 0:
        raise ReproError(f"dwell_radius must be positive, got {dwell_radius}")
    if min_dwell_points < 2:
        raise ReproError(
            f"min_dwell_points must be >= 2, got {min_dwell_points}"
        )
    n = len(points)
    trips: List[Trajectory] = []
    dwells: List[Trajectory] = []
    trip_buf: List[PointTuple] = []
    i = 0
    while i < n:
        # Greedily grow a dwell anchored at points[i].
        ax, ay = points[i]
        j = i
        while j < n and math.hypot(points[j][0] - ax, points[j][1] - ay) <= (
            dwell_radius
        ):
            j += 1
        if j - i >= min_dwell_points:
            if len(trip_buf) >= min_points:
                trips.append(Trajectory(f"{tid}_t{len(trips)}", trip_buf))
            trip_buf = []
            dwells.append(
                Trajectory(f"{tid}_d{len(dwells)}", points[i:j])
            )
            i = j
        else:
            trip_buf.append(points[i])
            i += 1
    if len(trip_buf) >= min_points:
        trips.append(Trajectory(f"{tid}_t{len(trips)}", trip_buf))
    return trips, dwells


def segment_stream(
    tid: str,
    points: Sequence[PointTuple],
    max_gap: float,
    dwell_radius: float,
    min_dwell_points: int = 5,
    min_points: int = 2,
) -> Tuple[List[Trajectory], List[Trajectory]]:
    """Full pipeline: gap split first, then dwell split each segment."""
    trips: List[Trajectory] = []
    dwells: List[Trajectory] = []
    for segment in split_by_gap(tid, points, max_gap, min_points=1):
        seg_trips, seg_dwells = split_by_dwell(
            segment.tid,
            segment.points,
            dwell_radius,
            min_dwell_points,
            min_points,
        )
        trips.extend(seg_trips)
        dwells.extend(seg_dwells)
    return trips, dwells
