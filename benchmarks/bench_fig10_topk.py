"""Figure 10 — top-k similarity search.

Reproduces both panels on the T-Drive stand-in:

* 10(a): median query time vs ``k`` for TraSS, JUST, DFT, DITA, REPOSE;
* 10(b): candidates vs ``k``.

Paper shape: TraSS fastest; DFT and REPOSE retain by far the most
candidates (DFT's sample-derived threshold admits large windows).
"""

from repro.bench.harness import run_topk_workload
from repro.bench.reporting import print_table

from conftest import K_SWEEP


def test_fig10_topk_tdrive(
    benchmark, tdrive_engine, tdrive_baselines, tdrive_repose, tdrive_queries
):
    systems = {
        "TraSS": tdrive_engine,
        **tdrive_baselines,
        "REPOSE": tdrive_repose,
    }
    queries = tdrive_queries[: max(3, len(tdrive_queries) // 2)]
    time_rows = []
    cand_rows = []
    for name, system in systems.items():
        time_row = [name]
        cand_row = [name]
        for k in K_SWEEP:
            stats = run_topk_workload(system, queries, k, name)
            time_row.append(stats.median_ms)
            cand_row.append(stats.mean_candidates)
        time_rows.append(time_row)
        cand_rows.append(cand_row)

    headers = ["system"] + [f"k={k}" for k in K_SWEEP]
    print_table(headers, time_rows, "Fig 10(a) T-Drive: median query time (ms)")
    print_table(headers, cand_rows, "Fig 10(b) T-Drive: mean candidates")

    # Shape: TraSS verifies fewer candidates than DFT at the largest k.
    trass_cands = cand_rows[0][-1]
    dft_cands = next(r for r in cand_rows if r[0] == "DFT")[-1]
    assert trass_cands <= dft_cands

    query = queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.topk_search(query, K_SWEEP[1]),
        rounds=3,
        iterations=1,
    )
