"""The paper's I/O-reduction claims.

* Section IV-B (theory): averaging over every non-empty far-quad
  combination, position codes prune 83.6% of index spaces relative to
  scanning the whole enlarged element.
* Abstract / Section VI (measured): global pruning reduces rows scanned
  by up to 66.4% versus XZ-Ordering.  Here both indexes run on the
  identical embedded store, so rows-scanned is directly comparable.
"""

import itertools
import statistics

from repro.baselines import JustXZ2Baseline
from repro.bench.reporting import print_table
from conftest import EARTH
from repro.index.position_code import CODE_QUADS

EPS = 0.01


def theoretical_reduction():
    """Average I/O reduction over all 15 non-empty far-quad sets,
    counting out of the ten index spaces (Section IV-B discussion)."""
    reductions = []
    per_combo = {}
    for size in range(1, 5):
        for far in itertools.combinations("abcd", size):
            far_set = set(far)
            pruned = sum(
                1 for quads in CODE_QUADS.values() if quads & far_set
            )
            pct = 100.0 * pruned / len(CODE_QUADS)
            per_combo["".join(far)] = pct
            reductions.append(pct)
    return statistics.fmean(reductions), per_combo


def test_theoretical_position_code_reduction(benchmark):
    average, per_combo = theoretical_reduction()
    rows = [[combo, pct] for combo, pct in sorted(per_combo.items())]
    rows.append(["AVERAGE", average])
    print_table(
        ["far quads", "I/O reduction %"],
        rows,
        "Section IV-B: theoretical I/O reduction of position codes",
    )
    # Individual paper-stated values.
    assert per_combo["a"] == 80.0
    assert per_combo["b"] == 60.0
    assert per_combo["c"] == 60.0
    assert per_combo["d"] == 50.0
    assert per_combo["ad"] == 90.0
    assert per_combo["bd"] == 80.0
    assert per_combo["cd"] == 80.0
    # The paper reports an 83.6% average; the exact enumeration under
    # this code table gives ~84.7% — same ballpark, same mechanism.
    assert 80.0 <= average <= 90.0

    benchmark.pedantic(theoretical_reduction, rounds=5, iterations=1)


def test_measured_io_reduction_vs_xz2(
    benchmark, tdrive_engine, tdrive_data, tdrive_queries
):
    """Rows scanned: XZ* global pruning vs XZ-Ordering window scan."""
    just = JustXZ2Baseline(max_resolution=16, bounds=EARTH, shards=8)
    just.build(tdrive_data)

    trass_rows = []
    just_rows = []
    for query in tdrive_queries:
        trass_rows.append(
            tdrive_engine.threshold_search(query, EPS).retrieved_rows
        )
        just_rows.append(just.threshold_search(query, EPS).retrieved)

    trass_total = sum(trass_rows)
    just_total = sum(just_rows)
    reduction = 100.0 * (1.0 - trass_total / max(1, just_total))
    print_table(
        ["index", "total rows scanned"],
        [
            ["XZ* (TraSS)", trass_total],
            ["XZ2 (JUST)", just_total],
            ["reduction %", reduction],
        ],
        f"Measured I/O reduction, XZ* vs XZ-Ordering (eps={EPS})",
    )
    # Paper: up to 66.4%. Shape: a solid reduction on identical substrate.
    assert trass_total <= just_total
    assert reduction > 20.0

    query = tdrive_queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.threshold_search(query, EPS),
        rounds=3,
        iterations=1,
    )


def test_range_merge_gap_reduces_seeks(
    benchmark, tdrive_engine, tdrive_queries
):
    """Scan-count drop from coalescing near-adjacent key ranges.

    Sweeping ``range_merge_gap`` (the planner bridges value gaps up to
    the setting, trading a few extra scanned rows for fewer range
    seeks) on the same engine: the pruner's gap knob is swapped in
    place — the plan cache keys on it, so plans never leak between gap
    settings — and every setting must return the seed answers.
    """
    engine = tdrive_engine
    pruner = engine.pruner
    original_gap = pruner.range_merge_gap
    rows = []
    baseline = {}
    try:
        for gap in (0, 2, 8, 32):
            pruner.range_merge_gap = gap
            engine.metrics.reset()
            answers = []
            for query in tdrive_queries:
                result = engine.threshold_search(query, EPS)
                answers.append(sorted(result.answers.items()))
            snap = engine.metrics.snapshot()
            if not baseline:
                baseline["answers"] = answers
                baseline["seeks"] = snap["range_seeks"]
            else:
                # Gap merging trades rows for seeks; answers are exact.
                assert answers == baseline["answers"], f"gap={gap}"
            rows.append(
                [
                    gap,
                    snap["range_seeks"],
                    snap["ranges_merged"],
                    snap["rows_scanned"],
                ]
            )
    finally:
        pruner.range_merge_gap = original_gap
    print_table(
        ["range_merge_gap", "range seeks", "ranges merged", "rows scanned"],
        rows,
        f"Range-gap coalescing: seeks vs over-scan (eps={EPS})",
    )
    # A positive gap must merge ranges and cut seeks; gap 0 merges none.
    assert rows[0][2] == 0
    assert rows[-1][2] > 0
    assert rows[-1][1] < baseline["seeks"]

    query = tdrive_queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.threshold_search(query, EPS),
        rounds=3,
        iterations=1,
    )
