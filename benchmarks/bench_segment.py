"""Compact segment format benchmark: footprint, cold scans, exactness.

Three drills over a 5-decimal T-Drive stand-in (real GPS feeds ship
fixed decimal precision, which is what the segment codec's lossless
quantisation exploits):

* **footprint** — the same engine saved plain (``.sst``) and compact
  (``.seg``).  CI gate: the compact snapshot must be >= 3x smaller.
* **cold scans** — time-to-first-answer: a fresh ``TraSS.load`` plus
  one threshold query, best of three, interleaved between the two
  snapshot formats so machine noise hits both equally, summed over the
  query set.  CI gate: the segment total must be lower.
  ``SSTable.load`` parses every entry before the first query can run,
  while ``Segment.open`` reads only the block index and materialises
  just the blocks the query's ranges touch — the worker-restart
  latency story behind the mmap design.  Warm throughput (everything
  materialised) is reported for reference; the formats are at parity
  there by construction.
* **exactness** — sha256 over the canonical answer set must be
  identical across every execution path: the in-memory builder, the
  plain snapshot, the compact snapshot, the compact snapshot with
  ``scan_workers=2``, the compact snapshot under seeded region-fault
  chaos, and a ``segment_dir`` serving cluster (whose replicas mmap
  the same files).

A JSON report is printed and, when ``REPRO_BENCH_JSON`` names a file,
appended there (the CI job uploads it as ``BENCH_segment.json``).
"""

import hashlib
import json
import os
import time

from repro import TraSS, TraSSConfig
from repro.bench.reporting import print_table
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.data.workload import sample_queries
from repro.kvstore.faults import FaultInjector, FaultSchedule
from repro.serve import ServingCluster

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SIZE = max(100, int(9600 * SCALE))
NUM_QUERIES = 6
EPS = 0.003
TRIALS = 3


def _build():
    data = tdrive_like(SIZE, seed=301, decimals=5)
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS,
        max_resolution=14,
        dp_tolerance=0.002,
        shards=8,
        retry_backoff_base=0.0,
        retry_backoff_max=0.0,
    )
    return TraSS.build(data, config), data


def _workload(engine_or_cluster, queries):
    answers = {}
    for i, q in enumerate(queries):
        result = engine_or_cluster.threshold_search(q, EPS)
        answers[i] = sorted(result.answers.items())
    return answers


def _digest(answers) -> str:
    canonical = json.dumps(
        {str(k): v for k, v in answers.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _data_bytes(directory, suffix):
    return sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
        if name.endswith(suffix)
    )


def _cold_first_answer_seconds(plain_dir, compact_dir, queries):
    """Summed best-of-TRIALS time-to-first-answer per query, per format.

    Trials interleave the two formats within each query so ambient
    machine noise degrades both measurements alike.
    """
    totals = {"sstable": 0.0, "segment": 0.0}
    for q in queries:
        for directory, label in (
            (plain_dir, "sstable"),
            (compact_dir, "segment"),
        ):
            best = float("inf")
            for _ in range(TRIALS):
                started = time.perf_counter()
                engine = TraSS.load(directory)
                engine.threshold_search(q, EPS)
                best = min(best, time.perf_counter() - started)
            totals[label] += best
    return totals


def test_segment_footprint_cold_scans_and_exactness(tmp_path_factory):
    engine, data = _build()
    queries = sample_queries(data, NUM_QUERIES, seed=302)
    base_answers = _workload(engine, queries)
    digests = {"in_memory": _digest(base_answers)}

    root = tmp_path_factory.mktemp("bench_segment")
    plain_dir = str(root / "plain")
    compact_dir = str(root / "compact")
    engine.save(plain_dir)
    engine.save(compact_dir, compact=True)

    sst_bytes = _data_bytes(plain_dir, ".sst")
    seg_bytes = _data_bytes(compact_dir, ".seg")
    ratio = sst_bytes / max(1, seg_bytes)

    cold = _cold_first_answer_seconds(plain_dir, compact_dir, queries)

    # Full-workload answers from each snapshot (also warms nothing —
    # every load below is fresh).
    digests["cold_sstable"] = _digest(_workload(TraSS.load(plain_dir), queries))
    loaded = TraSS.load(compact_dir)
    storage_before = loaded.stats()["storage"]["segments"]
    blocks_at_load = storage_before["blocks_materialized"]
    digests["cold_segment"] = _digest(_workload(loaded, queries))
    storage = loaded.stats()["storage"]["segments"]

    parallel = TraSS.load(compact_dir)
    parallel.configure_execution(scan_workers=2)
    digests["segment_parallel"] = _digest(_workload(parallel, queries))

    chaotic = TraSS.load(compact_dir)
    chaotic.install_fault_injector(
        FaultInjector(FaultSchedule(seed=303, region_unavailable_prob=0.15))
    )
    digests["segment_chaos"] = _digest(_workload(chaotic, queries))
    retries = chaotic.metrics.snapshot()["retries"]

    with ServingCluster.from_engine(
        engine,
        partitions=2,
        replication=2,
        segment_dir=str(root / "serve-segments"),
    ) as cluster:
        digests["segment_cluster"] = _digest(_workload(cluster, queries))

    speedup = cold["sstable"] / cold["segment"]
    report = {
        "trajectories": SIZE,
        "queries": len(queries),
        "eps": EPS,
        "sstable_bytes": sst_bytes,
        "segment_bytes": seg_bytes,
        "compression_ratio": ratio,
        "cold_first_answer_sstable_seconds": cold["sstable"],
        "cold_first_answer_segment_seconds": cold["segment"],
        "cold_speedup": speedup,
        "blocks_total": storage["blocks"],
        "blocks_materialized_at_load": blocks_at_load,
        "blocks_materialized_by_workload": storage["blocks_materialized"],
        "chaos_retries": retries,
        "digests": digests,
    }
    print_table(
        ["path", "bytes", "cold ttfa ms", "sha256[:12]"],
        [
            ["sstable", sst_bytes, f"{cold['sstable'] * 1000:.1f}",
             digests["cold_sstable"][:12]],
            ["segment", seg_bytes, f"{cold['segment'] * 1000:.1f}",
             digests["cold_segment"][:12]],
        ],
        title=f"compact segment: {ratio:.2f}x smaller, "
        f"{speedup:.2f}x faster cold first answer",
    )
    _emit_json({"segment": report})

    # --- CI gates -----------------------------------------------------
    assert len(set(digests.values())) == 1, (
        f"answer divergence across paths: {digests}"
    )
    assert ratio >= 3.0, (
        f"compact snapshot only {ratio:.2f}x smaller "
        f"({sst_bytes} -> {seg_bytes} bytes)"
    )
    assert cold["segment"] < cold["sstable"], (
        f"cold scans not faster: segment {cold['segment']:.3f}s vs "
        f"sstable {cold['sstable']:.3f}s"
    )
    assert blocks_at_load == 0, (
        f"load materialised {blocks_at_load} blocks eagerly"
    )
    assert storage["blocks_materialized"] < storage["blocks"], (
        "workload materialised every block — laziness gate is vacuous"
    )
    assert retries > 0, "chaos schedule injected no faults"


def _emit_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as fh:
            fh.write(payload + "\n")
