"""Ablation — what each pruning layer buys (DESIGN.md design choices).

Three configurations of the same engine answer the same workload:

1. full TraSS (position codes + all local-filter stages),
2. no position codes (Lemmas 10-11 off — element-level pruning only,
   i.e. XZ-Ordering's power on XZ* layout),
3. no local filter (Lemmas 12-14 off — every retrieved row goes to the
   exact measure).

Paper expectation (Section IV-B / Figure 11): position codes cut the
rows scanned substantially; local filtering cuts the expensive exact
evaluations.
"""

import statistics
import time

from repro.bench.reporting import print_table
from repro.core.local_filter import LocalFilter, LocalFilterRowFilter
from repro.core.pruning import GlobalPruner
from repro.measures import get_measure

EPS = 0.01


def run_config(engine, queries, use_codes, stages):
    """One workload pass under an ablated configuration."""
    pruner = GlobalPruner(
        engine.store.index,
        engine.config.max_planned_elements,
        use_position_codes=use_codes,
    )
    measure = get_measure("frechet")
    times = []
    retrieved = []
    refined = []
    answers = []
    for query in queries:
        started = time.perf_counter()
        plan = pruner.prune(query, EPS)
        local = LocalFilter(
            query, measure, EPS, engine.config.dp_tolerance, stages=stages
        )
        row_filter = LocalFilterRowFilter(local)
        before = engine.metrics.snapshot()
        rows = engine.store.table.scan_ranges(
            engine.store.scan_ranges_for(plan.ranges), row_filter
        )
        hits = 0
        for key, _ in rows:
            record = row_filter.accepted[key]
            if measure.within(query.points, record.points, EPS):
                hits += 1
        times.append(time.perf_counter() - started)
        retrieved.append(engine.metrics.diff(before)["rows_scanned"])
        refined.append(len(rows))
        answers.append(hits)
    return (
        1000 * statistics.median(times),
        statistics.fmean(retrieved),
        statistics.fmean(refined),
        statistics.fmean(answers),
    )


def test_ablation_pruning_layers(benchmark, tdrive_engine, tdrive_queries):
    configs = [
        ("full TraSS", True, None),
        ("no position codes", False, None),
        ("no local filter", True, frozenset()),
        ("MBR gap only", True, frozenset({"mbr"})),
    ]
    rows = []
    results = {}
    for label, use_codes, stages in configs:
        median_ms, mean_retrieved, mean_refined, mean_answers = run_config(
            tdrive_engine, tdrive_queries, use_codes, stages
        )
        results[label] = (mean_retrieved, mean_refined)
        rows.append([label, median_ms, mean_retrieved, mean_refined, mean_answers])
    print_table(
        ["configuration", "median ms", "rows scanned", "exact evals", "answers"],
        rows,
        f"Ablation: pruning layers (T-Drive, eps={EPS})",
    )

    # Position codes must reduce rows scanned; answers identical.
    assert results["full TraSS"][0] <= results["no position codes"][0]
    # Local filtering must reduce exact-measure evaluations.
    assert results["full TraSS"][1] <= results["no local filter"][1]
    answer_counts = {row[0]: row[4] for row in rows}
    assert len(set(answer_counts.values())) == 1, (
        "every ablation must return the same answers"
    )

    benchmark.pedantic(
        lambda: run_config(tdrive_engine, tdrive_queries[:2], True, None),
        rounds=2,
        iterations=1,
    )
