"""Shared benchmark fixtures.

Datasets are bench-friendly scale by default (the paper's clusters and
multi-GB datasets do not fit a unit-test budget); set
``REPRO_BENCH_SCALE`` to a float to grow or shrink everything, e.g.
``REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only``.

Every figure's bench prints the same rows/series the paper plots, so
shapes (who wins, by what factor) can be compared directly.
"""

from __future__ import annotations

import os

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig
from repro.baselines import (
    DFTBaseline,
    DITABaseline,
    JustXZ2Baseline,
    REPOSEBaseline,
)
from repro.data.generators import (
    LORRY_BOUNDS,
    TDRIVE_BOUNDS,
    lorry_like,
    tdrive_like,
)
from repro.data.workload import sample_queries

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_size(base: int) -> int:
    return max(10, int(base * SCALE))


TDRIVE_SIZE = scaled_size(1200)
LORRY_SIZE = scaled_size(500)
NUM_QUERIES = max(4, int(10 * min(SCALE, 2.0)))

#: eps sweep mirroring Figure 9's 0.001..0.02 (degrees)
EPS_SWEEP = (0.001, 0.005, 0.01, 0.02)
#: k sweep; the paper uses 50..250 on millions of rows — scaled down
K_SWEEP = (5, 10, 25, 50)


@pytest.fixture(scope="session")
def tdrive_data():
    return tdrive_like(TDRIVE_SIZE, seed=101)


@pytest.fixture(scope="session")
def lorry_data():
    return lorry_like(LORRY_SIZE, seed=102)


# "The entire index space of the XZ* index covers the earth" and "the
# default maximum resolution is 16" (Section VI).  City-extent bounds
# would shift every trajectory to a coarser resolution band and change
# all index-level comparisons, so the engines index over the earth.
EARTH = SpaceBounds.whole_earth()


@pytest.fixture(scope="session")
def tdrive_config():
    return TraSSConfig(
        bounds=EARTH, max_resolution=16, dp_tolerance=0.01, shards=8
    )


@pytest.fixture(scope="session")
def lorry_config():
    return TraSSConfig(
        bounds=EARTH, max_resolution=16, dp_tolerance=0.01, shards=8
    )


@pytest.fixture(scope="session")
def tdrive_engine(tdrive_data, tdrive_config):
    return TraSS.build(tdrive_data, tdrive_config)


@pytest.fixture(scope="session")
def lorry_engine(lorry_data, lorry_config):
    return TraSS.build(lorry_data, lorry_config)


@pytest.fixture(scope="session")
def tdrive_queries(tdrive_data):
    return sample_queries(tdrive_data, NUM_QUERIES, seed=103)


@pytest.fixture(scope="session")
def lorry_queries(lorry_data):
    return sample_queries(lorry_data, NUM_QUERIES, seed=104)


@pytest.fixture(scope="session")
def tdrive_baselines(tdrive_data):
    """JUST / DFT / DITA built once on the T-Drive stand-in."""
    systems = {
        "JUST": JustXZ2Baseline(
            max_resolution=16, bounds=EARTH, shards=8
        ),
        "DFT": DFTBaseline(),
        "DITA": DITABaseline(cell_size=0.02),
    }
    for system in systems.values():
        system.build(tdrive_data)
    return systems


@pytest.fixture(scope="session")
def tdrive_repose(tdrive_data):
    system = REPOSEBaseline(num_references=4)
    system.build(tdrive_data)
    return system
