"""Figures 14-15 — varying the maximum resolution.

Sweeps the XZ* maximum resolution and reports selectivity (distinct
index values / rows), threshold query time, and top-k query time.

Paper shape: low resolutions (14 in the paper) have poor selectivity —
many trajectories share an index value, so scans drag in more rows and
queries slow down; very high resolutions add little once trajectories
are separated.
"""

from repro import TraSS, TraSSConfig
from repro.bench.harness import run_threshold_workload, run_topk_workload
from repro.bench.reporting import print_table
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.data.workload import sample_queries

from conftest import EARTH, scaled_size

RESOLUTIONS = (10, 12, 14, 16)


def test_fig14_15_resolution_sweep(benchmark):
    data = tdrive_like(scaled_size(700), seed=114)
    queries = sample_queries(data, 6, seed=115)
    rows = []
    engines = {}
    for res in RESOLUTIONS:
        cfg = TraSSConfig(
            bounds=EARTH, max_resolution=res, dp_tolerance=0.01, shards=8
        )
        engine = TraSS.build(data, cfg)
        engines[res] = engine
        threshold_stats = run_threshold_workload(engine, queries, 0.01)
        topk_stats = run_topk_workload(engine, queries[:4], 10)
        rows.append(
            [
                res,
                engine.store.selectivity(),
                threshold_stats.median_ms,
                threshold_stats.mean_retrieved,
                topk_stats.median_ms,
            ]
        )
    print_table(
        [
            "max resolution",
            "selectivity",
            "threshold ms",
            "retrieved rows",
            "top-k ms",
        ],
        rows,
        "Figs 14-15: varying maximum resolution (T-Drive, eps=0.01, k=10)",
    )

    # Shape: selectivity improves monotonically with resolution.
    selectivities = [r[1] for r in rows]
    assert selectivities == sorted(selectivities)
    # Coarse index retrieves at least as many rows as the fine one.
    assert rows[0][3] >= rows[-1][3]

    engine = engines[16]
    query = queries[0]
    benchmark.pedantic(
        lambda: engine.threshold_search(query, 0.01), rounds=3, iterations=1
    )
