"""Cluster-observability overhead: the <= 5% warm-p50 gate.

Two identical clusters serve the same warm single-query workload, one
bare and one with the full observability stack on (recording tracer,
trace propagation on every request, reply-delta aggregation, SLO
histograms).  Samples interleave off/on query-by-query so drift on a
busy host hits both sides equally, and the gate compares warm *p50*
latencies — medians, because a 1-CPU CI machine produces heavy tails
that have nothing to do with the code under test.  A small absolute
floor keeps the relative gate meaningful when queries are
sub-millisecond.

Answers are asserted identical between the two clusters on every
sample — the overhead run doubles as one more byte-identity drill.

A JSON report is printed and, when ``REPRO_BENCH_JSON`` names a file,
appended there (the CI job uploads it as ``BENCH_cluster_obs.json``).
"""

import json
import os
import statistics
import time

from repro.bench.reporting import print_table
from repro.obs import Tracer
from repro.serve import ServingCluster

#: relative overhead allowed on the warm p50 (the CI gate)
MAX_OVERHEAD = 0.05
#: absolute slack: relative gates degenerate on sub-ms medians
ABS_FLOOR_SECONDS = 0.002
EPS = 0.005
WARMUP = 4
SAMPLES = 40


def _sample(cluster, query):
    started = time.perf_counter()
    result = cluster.threshold_search(query, EPS)
    return time.perf_counter() - started, sorted(result.answers.items())


def test_cluster_observability_overhead(lorry_engine, lorry_queries):
    engine = lorry_engine
    queries = lorry_queries
    tracer = Tracer()
    with ServingCluster.from_engine(engine, partitions=2) as off, (
        ServingCluster.from_engine(
            engine, partitions=2, observability=True, tracer=tracer
        )
    ) as on:
        for q in queries[:WARMUP]:
            _sample(off, q)
            _sample(on, q)
        off_seconds, on_seconds = [], []
        for i in range(SAMPLES):
            query = queries[i % len(queries)]
            # Interleave, alternating which side goes first so cache
            # and scheduler drift cannot systematically favour one.
            if i % 2 == 0:
                t_off, a_off = _sample(off, query)
                t_on, a_on = _sample(on, query)
            else:
                t_on, a_on = _sample(on, query)
                t_off, a_off = _sample(off, query)
            assert a_on == a_off, (
                f"observability changed answers for query {i}"
            )
            off_seconds.append(t_off)
            on_seconds.append(t_on)
        snapshot = on.stats()["observability"]

    # The observed side really did the observability work.
    assert snapshot["slo"]["summaries"]["query"]["count"] >= SAMPLES
    assert len(tracer.traces()) >= SAMPLES
    assert snapshot["cluster_io"]["rows_scanned"] > 0

    p50_off = statistics.median(off_seconds)
    p50_on = statistics.median(on_seconds)
    overhead = (p50_on - p50_off) / p50_off if p50_off > 0 else 0.0
    budget = p50_off * (1.0 + MAX_OVERHEAD) + ABS_FLOOR_SECONDS

    print_table(
        ["observability", "warm p50 ms", "warm p95 ms"],
        [
            ["off", p50_off * 1000, _p95(off_seconds) * 1000],
            ["on", p50_on * 1000, _p95(on_seconds) * 1000],
        ],
        title="cluster observability overhead (interleaved)",
    )
    _emit_json(
        {
            "cluster_observability_overhead": {
                "samples": SAMPLES,
                "eps": EPS,
                "p50_off_seconds": p50_off,
                "p50_on_seconds": p50_on,
                "p95_off_seconds": _p95(off_seconds),
                "p95_on_seconds": _p95(on_seconds),
                "overhead_ratio": overhead,
                "max_overhead_ratio": MAX_OVERHEAD,
                "abs_floor_seconds": ABS_FLOOR_SECONDS,
                "gate_budget_seconds": budget,
                "passed_gate": p50_on <= budget,
                "cpu_count": os.cpu_count(),
            }
        }
    )
    assert p50_on <= budget, (
        f"observability overhead {overhead:.1%} on warm p50 "
        f"({p50_on * 1000:.2f} ms vs {p50_off * 1000:.2f} ms) exceeds "
        f"{MAX_OVERHEAD:.0%} + {ABS_FLOOR_SECONDS * 1000:.0f} ms floor"
    )


def _p95(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _emit_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as fh:
            fh.write(payload + "\n")
