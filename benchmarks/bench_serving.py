"""Serving-tier benchmark: scatter-gather scaling, chaos, admission.

Four drills over the lorry-like dataset, every one of them asserting
bit-identical answers against the single-process engine (the serving
tier is an availability/latency layer, never an approximation):

* **scaling** — the same batched threshold workload through a 1-shard
  and a 4-shard cluster.  On a >= 4-CPU host the 4-shard run must
  reach >= 2.5x the 1-shard throughput (the CI gate); on smaller hosts
  the ratio is reported but not enforced.
* **chaos** — SIGKILL one replica mid-workload (replication=2): zero
  queries lost, answers exact.
* **degraded** — kill the only replica of a partition
  (replication=1, no restarts): partial answers must report *exactly*
  the row-key ranges the dead partition would have scanned.
* **admission** — flood at 2x a tenant's capacity: exactly the excess
  is shed, every rejection a typed ``OverloadedError``.

A JSON report is printed and, when ``REPRO_BENCH_JSON`` names a file,
appended there (the CI job uploads it as ``BENCH_serving.json``).
"""

import json
import os
import threading
import time

from repro.bench.reporting import print_table
from repro.exceptions import OverloadedError
from repro.serve import AdmissionController, ServingCluster

#: eps values for the serving workload (a subset of Figure 9's sweep;
#: two passes give the pipelined FIFOs enough work to overlap).
SERVING_EPS = (0.005, 0.01)


def _workload(cluster_or_engine, queries):
    """Run the batched threshold workload; returns (seconds, answers)."""
    answers = {}
    started = time.perf_counter()
    for eps in SERVING_EPS:
        results = cluster_or_engine.threshold_search_many(queries, eps)
        for i, result in enumerate(results):
            answers[(i, eps)] = sorted(result.answers.items())
    return time.perf_counter() - started, answers


def test_serving_scaling_and_exactness(lorry_engine, lorry_queries):
    engine = lorry_engine
    _, expected = _workload(engine, lorry_queries)
    n_queries = len(lorry_queries) * len(SERVING_EPS)

    rows = []
    report = {"scaling": [], "queries": n_queries}
    seconds_by_partitions = {}
    for partitions in (1, 4):
        with ServingCluster.from_engine(engine, partitions=partitions) as c:
            _workload(c, lorry_queries[:2])  # warm the worker FIFOs
            seconds, answers = _workload(c, lorry_queries)
            stats = c.stats()
        assert answers == expected, (
            f"{partitions}-shard cluster diverged from the "
            "single-process engine"
        )
        assert stats["counters"]["worker_errors"] == 0
        seconds_by_partitions[partitions] = seconds
        rows.append([partitions, seconds * 1000, n_queries / seconds])
        report["scaling"].append(
            {
                "partitions": partitions,
                "seconds": seconds,
                "queries_per_second": n_queries / seconds,
            }
        )

    ratio = seconds_by_partitions[1] / seconds_by_partitions[4]
    report["throughput_ratio_4_vs_1"] = ratio
    report["cpu_count"] = os.cpu_count()
    print_table(
        ["shard workers", "total ms", "q/s"],
        rows,
        f"Serving tier: batched threshold workload "
        f"({n_queries} queries, exact on every run); "
        f"4-shard/1-shard throughput ratio {ratio:.2f}x",
    )
    if (os.cpu_count() or 1) >= 4:
        assert ratio >= 2.5, (
            "4 shard workers must reach >= 2.5x the 1-shard throughput "
            f"on a >= 4-CPU host, got {ratio:.2f}x"
        )
    _emit_json({"serving_scaling": report})


def test_serving_chaos_sigkill_loses_nothing(lorry_engine, lorry_queries):
    """SIGKILL one replica while the batch is in flight: with a peer
    replica present, zero queries are lost and answers stay exact."""
    engine = lorry_engine
    _, expected = _workload(engine, lorry_queries)

    with ServingCluster.from_engine(
        engine, partitions=2, replication=2
    ) as c:
        # Park replica (0, 0) so the batch lands on it while asleep,
        # then SIGKILL it mid-stall — a deterministic mid-stream death
        # (the in-flight requests hit EOF and fail over to the peer).
        c.stall_replica(0, 0, seconds=0.3)
        killer = threading.Timer(0.1, c.kill_replica, args=(0, 0))
        killer.start()
        try:
            seconds, answers = _workload(c, lorry_queries)
        finally:
            killer.cancel()
        stats = c.stats()

    lost = sum(1 for key in expected if key not in answers)
    mismatched = sum(
        1 for key in expected if answers.get(key) != expected[key]
    )
    print_table(
        ["queries", "lost", "mismatched", "failovers", "restarts", "ms"],
        [
            [
                len(expected),
                lost,
                mismatched,
                stats["counters"]["failovers"],
                stats["worker_restarts"],
                seconds * 1000,
            ]
        ],
        "Serving chaos: SIGKILL one replica mid-workload (replication=2)",
    )
    assert lost == 0
    assert mismatched == 0
    _emit_json(
        {
            "serving_chaos": {
                "queries": len(expected),
                "lost": lost,
                "mismatched": mismatched,
                "failovers": stats["counters"]["failovers"],
                "worker_restarts": stats["worker_restarts"],
            }
        }
    )


def test_serving_degraded_reports_exact_skipped_ranges(
    lorry_engine, lorry_queries
):
    engine = lorry_engine
    query = lorry_queries[0]
    eps = SERVING_EPS[-1]
    with ServingCluster.from_engine(
        engine,
        partitions=2,
        replication=1,
        max_restarts=0,
        max_attempts=1,
        degraded_mode=True,
    ) as c:
        c.kill_replica(0, 0)
        served = c.threshold_search(query, eps)
        plan = c.pruner.prune(query, eps)
        expected_skipped = engine.store.scan_ranges_for(
            plan.ranges, shards=c.owned_salts(0)
        )
        degraded_queries = c.counters["degraded_queries"]

    local = engine.threshold_search(query, eps)
    assert served.skipped_ranges == expected_skipped
    assert set(served.answers) <= set(local.answers)
    assert all(local.answers[t] == d for t, d in served.answers.items())
    print_table(
        ["skipped ranges", "completeness", "answers (partial/full)"],
        [
            [
                len(served.skipped_ranges),
                served.completeness,
                f"{len(served.answers)}/{len(local.answers)}",
            ]
        ],
        "Serving degraded mode: dead partition, no replica",
    )
    _emit_json(
        {
            "serving_degraded": {
                "skipped_ranges": len(served.skipped_ranges),
                "completeness": served.completeness,
                "partial_answers": len(served.answers),
                "full_answers": len(local.answers),
                "degraded_queries": degraded_queries,
            }
        }
    )


def test_serving_admission_sheds_flood(lorry_engine, lorry_queries):
    """Flood at 2x capacity: the excess is shed with typed rejections,
    admitted requests are answered exactly."""
    engine = lorry_engine
    query = lorry_queries[0]
    eps = SERVING_EPS[0]
    capacity = 8
    flood = 2 * capacity
    # A near-zero refill rate makes the burst the whole capacity, so
    # the flood outcome is deterministic: `capacity` admitted, the
    # rest rejected.
    admission = AdmissionController(
        tenant_rate=1e-9, tenant_burst=float(capacity)
    )
    expected = engine.threshold_search(query, eps).answers
    outcomes = {"admitted": 0, "quota": 0, "queue_depth": 0}
    with ServingCluster.from_engine(
        engine, partitions=2, admission=admission
    ) as c:
        for _ in range(flood):
            try:
                result = c.threshold_search(query, eps)
            except OverloadedError as exc:
                assert exc.reason in ("quota", "queue_depth")
                assert exc.tenant == "default"
                outcomes[exc.reason] += 1
            else:
                assert result.answers == expected
                outcomes["admitted"] += 1
        snapshot = c.admission.snapshot()

    print_table(
        ["flood", "capacity", "admitted", "quota shed", "depth shed"],
        [
            [
                flood,
                capacity,
                outcomes["admitted"],
                outcomes["quota"],
                outcomes["queue_depth"],
            ]
        ],
        "Serving admission: flood at 2x tenant capacity",
    )
    assert outcomes["admitted"] == capacity
    assert outcomes["quota"] == flood - capacity
    assert snapshot["rejected_quota"] == flood - capacity
    assert snapshot["in_flight"] == 0
    _emit_json({"serving_admission": {"flood": flood, **outcomes}})


def _emit_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as fh:
            fh.write(payload + "\n")
