"""Vectorised filtering and multi-query batch execution.

Measures a 32-query threshold workload on one store across execution
modes (knobs re-tuned in place, so data / index / plans are constant):

* ``seed``:            sequential, scalar filter, caches off;
* ``scalar-warm``:     sequential, scalar filter, caches warm;
* ``vector-warm``:     sequential, vectorised filter, caches warm;
* ``batch-N``:         the workload split into batches of N queries
                       (``threshold_search_many``), vectorised, warm —
                       the batch-size sweep;
* ``batch-scalar``:    full batch with the scalar filter, isolating
                       scan sharing from vectorisation.

Every mode re-checks that answers are identical to the seed mode (both
layers are pure optimisations).  A JSON report is printed and, when
``REPRO_BENCH_JSON`` names a file, appended there.

Acceptance gate: the warm vectorised 32-query batch reaches >= 1.5x the
seed sequential-scalar throughput, and shares rows (strictly fewer
rows scanned than sequential execution).
"""

import json
import os
import time

from repro.bench.reporting import print_table
from repro.data.workload import sample_queries

EPS = 0.01
BATCH_SIZES = (1, 8, 32)
NUM_BATCH_QUERIES = 32


def _answers_of(results):
    return [sorted(r.answers.items()) for r in results]


def _run_sequential(engine, queries):
    started = time.perf_counter()
    results = [engine.threshold_search(q, EPS) for q in queries]
    return time.perf_counter() - started, _answers_of(results)


def _run_batched(engine, queries, batch_size):
    started = time.perf_counter()
    results = []
    for i in range(0, len(queries), batch_size):
        results.extend(
            engine.threshold_search_many(queries[i : i + batch_size], EPS)
        )
    return time.perf_counter() - started, _answers_of(results)


def test_batch_query_throughput(tdrive_engine, tdrive_data):
    engine = tdrive_engine
    queries = sample_queries(tdrive_data, NUM_BATCH_QUERIES, seed=331)
    report = {"batch": []}
    rows = []
    baseline = {}

    def record(label, seconds, answers, vectorized, batch_size, snap):
        if not baseline:
            baseline["answers"] = answers
            baseline["seconds"] = seconds
        else:
            # Both layers are pure optimisations: answers are exact.
            assert answers == baseline["answers"], label
        speedup = baseline["seconds"] / seconds
        qps = len(queries) / seconds
        rows.append(
            [label, batch_size or "-", vectorized, seconds * 1000, qps, speedup]
        )
        report["batch"].append(
            {
                "label": label,
                "batch_size": batch_size,
                "vectorized": vectorized,
                "seconds": seconds,
                "queries_per_second": qps,
                "speedup_vs_seed": speedup,
                "rows_scanned": snap["rows_scanned"],
                "batch_ranges_merged": snap["batch_ranges_merged"],
                "batch_rows_shared": snap["batch_rows_shared"],
                "columnar_cache_hits": snap["columnar_cache_hits"],
            }
        )
        return report["batch"][-1]

    try:
        # -- seed: sequential, scalar, cold caches ----------------------
        engine.configure_execution(
            scan_workers=1, cache_mb=0.0, plan_cache_size=0,
            vectorized_filter=False,
        )
        engine.metrics.reset()
        seconds, answers = _run_sequential(engine, queries)
        seed = record(
            "seed", seconds, answers, False, None, engine.metrics.snapshot()
        )

        # -- sequential ablation: scalar vs vectorised, warm ------------
        for label, vectorized in (
            ("scalar-warm", False),
            ("vector-warm", True),
        ):
            engine.configure_execution(
                cache_mb=64.0, plan_cache_size=128,
                vectorized_filter=vectorized,
            )
            _run_sequential(engine, queries)  # warm pass
            engine.metrics.reset()
            seconds, answers = _run_sequential(engine, queries)
            record(
                label, seconds, answers, vectorized, None,
                engine.metrics.snapshot(),
            )

        # -- batch-size sweep (vectorised, warm) ------------------------
        for batch_size in BATCH_SIZES:
            _run_batched(engine, queries, batch_size)  # warm pass
            engine.metrics.reset()
            seconds, answers = _run_batched(engine, queries, batch_size)
            record(
                f"batch-{batch_size}", seconds, answers, True, batch_size,
                engine.metrics.snapshot(),
            )

        # -- full batch with the scalar filter --------------------------
        engine.configure_execution(vectorized_filter=False)
        _run_batched(engine, queries, NUM_BATCH_QUERIES)  # warm pass
        engine.metrics.reset()
        seconds, answers = _run_batched(engine, queries, NUM_BATCH_QUERIES)
        record(
            "batch-scalar", seconds, answers, False, NUM_BATCH_QUERIES,
            engine.metrics.snapshot(),
        )

        print_table(
            ["mode", "batch", "vectorized", "total ms", "q/s", "speedup"],
            rows,
            f"Batch query execution ({len(queries)} threshold queries, "
            f"eps={EPS:g})",
        )

        full_batch = next(
            c for c in report["batch"] if c["label"] == f"batch-{NUM_BATCH_QUERIES}"
        )
        # Scan sharing must actually share: fewer rows than sequential.
        assert full_batch["batch_rows_shared"] > 0
        assert full_batch["batch_ranges_merged"] > 0
        assert full_batch["rows_scanned"] < seed["rows_scanned"]
        # Acceptance gate: warm vectorised batch >= 1.5x seed throughput.
        assert full_batch["speedup_vs_seed"] >= 1.5, (
            "warm vectorised 32-query batch must be >= 1.5x sequential "
            f"scalar execution, got {full_batch['speedup_vs_seed']:.2f}x"
        )
    finally:
        engine.configure_execution(
            scan_workers=1, cache_mb=0.0, plan_cache_size=128,
            vectorized_filter=False,
        )

    _emit_json(report)


def _emit_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as fh:
            fh.write(payload + "\n")
