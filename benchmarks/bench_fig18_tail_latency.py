"""Figure 18 — tail latency (99th percentile).

Paper shape: TraSS's p99 is below the baselines' p99 for both query
types — the pruning pipeline bounds worst-case work, not just median
work.
"""

from repro.bench.harness import run_threshold_workload, run_topk_workload
from repro.bench.reporting import print_table

EPS = 0.01
K = 10


def test_fig18_tail_latency(
    benchmark, tdrive_engine, tdrive_baselines, tdrive_queries
):
    rows = []
    systems = {"TraSS": tdrive_engine, **tdrive_baselines}
    for name, system in systems.items():
        threshold_stats = run_threshold_workload(
            system, tdrive_queries, EPS, name
        )
        topk_stats = run_topk_workload(
            system, tdrive_queries[: max(3, len(tdrive_queries) // 2)], K, name
        )
        rows.append(
            [
                name,
                threshold_stats.median_ms,
                threshold_stats.p99_ms,
                topk_stats.median_ms,
                topk_stats.p99_ms,
            ]
        )
    print_table(
        [
            "system",
            "thr median ms",
            "thr p99 ms",
            "top-k median ms",
            "top-k p99 ms",
        ],
        rows,
        f"Fig 18: tail latency (eps={EPS}, k={K})",
    )

    for row in rows:
        assert row[2] >= row[1]  # p99 >= median, sanity
        assert row[4] >= row[3]

    query = tdrive_queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.threshold_search(query, EPS),
        rounds=3,
        iterations=1,
    )
