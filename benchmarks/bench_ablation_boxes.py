"""Ablation — DP-feature covering-box construction.

Compares the paper's chord-aligned boxes against minimum-area oriented
rectangles (rotating calipers) on the same workload: filter power
(candidates surviving local filtering), build cost, and query time.

Expected: minimum-area boxes are never looser, so candidates can only
drop; the question the ablation answers is whether the tighter boxes
pay for their extra construction cost.
"""

import time

from repro import TraSS, TraSSConfig
from repro.bench.harness import run_threshold_workload
from repro.bench.reporting import print_table
from repro.data.generators import tdrive_like
from repro.data.workload import sample_queries

from conftest import EARTH, scaled_size

EPS = 0.01


def test_ablation_box_mode(benchmark):
    data = tdrive_like(scaled_size(600), seed=311)
    queries = sample_queries(data, 6, seed=312)
    rows = []
    results = {}
    for mode in ("chord", "min_area"):
        cfg = TraSSConfig(
            bounds=EARTH,
            max_resolution=16,
            dp_tolerance=0.01,
            shards=8,
            box_mode=mode,
        )
        started = time.perf_counter()
        engine = TraSS.build(data, cfg)
        build_seconds = time.perf_counter() - started
        stats = run_threshold_workload(engine, queries, EPS)
        results[mode] = stats
        rows.append(
            [
                mode,
                build_seconds,
                stats.median_ms,
                stats.mean_candidates,
                stats.mean_answers,
            ]
        )
    print_table(
        ["box mode", "build (s)", "median ms", "candidates", "answers"],
        rows,
        f"Ablation: covering-box construction (eps={EPS})",
    )

    # Same answers; min-area candidates never exceed chord candidates.
    assert results["chord"].mean_answers == results["min_area"].mean_answers
    assert (
        results["min_area"].mean_candidates
        <= results["chord"].mean_candidates + 1e-9
    )

    benchmark.pedantic(
        lambda: run_threshold_workload(
            TraSS.build(data[:100], TraSSConfig(bounds=EARTH, box_mode="min_area")),
            queries[:2],
            EPS,
        ),
        rounds=1,
        iterations=1,
    )
