"""Figure 12 — distribution of trajectories over the XZ* index.

* 12(a): trajectory count per resolution.  Paper shape: mass in a
  mid-resolution band set by trip sizes, plus a spike at the maximum
  resolution caused by stationary (waiting) taxis.
* 12(b): trajectory count per position code — the fine-grained
  granularity the position codes add inside each element.
"""

from repro.bench.reporting import print_table


def test_fig12_distribution(benchmark, tdrive_engine, tdrive_data):
    store = tdrive_engine.store
    res_hist = store.resolution_histogram()
    code_hist = store.position_code_histogram()

    max_res = store.config.max_resolution
    rows = [
        [level, res_hist.get(level, 0)] for level in sorted(res_hist)
    ]
    print_table(
        ["resolution", "trajectories"],
        rows,
        "Fig 12(a): trajectories per resolution",
    )
    print_table(
        ["position code", "trajectories"],
        [[code, code_hist.get(code, 0)] for code in range(1, 11)],
        "Fig 12(b): trajectories per position code",
    )

    # Shape assertions.
    stationary = sum(1 for t in tdrive_data if t.is_stationary())
    assert res_hist.get(max_res, 0) >= stationary, (
        "stationary taxis must pile up at the maximum resolution"
    )
    # Moving trajectories occupy a band strictly below the maximum.
    moving_mass = sum(v for lvl, v in res_hist.items() if lvl < max_res)
    assert moving_mass > 0
    # Position codes spread across several combinations.
    assert len([c for c, v in code_hist.items() if v > 0]) >= 4

    benchmark.pedantic(store.resolution_histogram, rounds=3, iterations=1)
