"""Figure 20 — Hausdorff and DTW efficiency (Section VII).

Paper notes: DITA does not support Hausdorff; DFT does not support DTW;
REPOSE is top-k only.  The bench mirrors those support gaps and the
shape that TraSS leads under both measures.
"""

from repro.baselines import DFTBaseline, DITABaseline, JustXZ2Baseline
from repro.bench.harness import run_threshold_workload, run_topk_workload
from repro.bench.reporting import print_table
from conftest import EARTH

EPS = 0.01
K = 10


def test_fig20_other_measures(benchmark, tdrive_engine, tdrive_data, tdrive_queries):
    queries = tdrive_queries[: max(3, len(tdrive_queries) // 2)]

    # Baselines rebuilt per measure (their verification step is bound
    # to a measure at construction), mirroring each system's support:
    rows = []
    for measure in ("hausdorff", "dtw"):
        contenders = {"TraSS": None}  # engine supports per-query override
        just = JustXZ2Baseline(measure, max_resolution=16, bounds=EARTH, shards=8)
        just.build(tdrive_data)
        contenders["JUST"] = just
        if measure != "dtw":
            dft = DFTBaseline(measure)
            dft.build(tdrive_data)
            contenders["DFT"] = dft
        if measure != "hausdorff":
            dita = DITABaseline(measure, cell_size=0.02)
            dita.build(tdrive_data)
            contenders["DITA"] = dita

        for name, system in contenders.items():
            if name == "TraSS":
                import statistics
                import time

                times = []
                for q in queries:
                    t0 = time.perf_counter()
                    tdrive_engine.threshold_search(q, EPS, measure=measure)
                    times.append(time.perf_counter() - t0)
                median_ms = 1000 * statistics.median(times)
            else:
                median_ms = run_threshold_workload(
                    system, queries, EPS, name
                ).median_ms
            rows.append([measure, name, median_ms])

    print_table(
        ["measure", "system", "median threshold ms"],
        rows,
        f"Fig 20: other measures (eps={EPS})",
    )

    # Shape: TraSS at least matches JUST under both measures.
    for measure in ("hausdorff", "dtw"):
        trass = next(r[2] for r in rows if r[0] == measure and r[1] == "TraSS")
        just_t = next(r[2] for r in rows if r[0] == measure and r[1] == "JUST")
        assert trass <= just_t * 1.5  # allow noise, shape must hold broadly

    # Answers agree across measures' implementations.
    q = queries[0]
    for measure in ("hausdorff", "dtw"):
        got = set(tdrive_engine.threshold_search(q, EPS, measure=measure).answers)
        just = JustXZ2Baseline(measure, max_resolution=16, bounds=EARTH, shards=2)
        just.build(tdrive_data)
        assert got == set(just.threshold_search(q, EPS).answers)

    benchmark.pedantic(
        lambda: tdrive_engine.threshold_search(q, EPS, measure="dtw"),
        rounds=3,
        iterations=1,
    )
