"""Ablation — scan-range fragmentation vs. the merge gap.

Section IV-C motivates the continuous integer encoding with the cost of
fragmented key ranges ("using the simple concatenation will make the
encoding discontinuous, which will increase the number of key range
searches").  This bench measures the residual fragmentation of real
plans and how bridging small value gaps (``range_merge_gap``) trades
range seeks against junk rows.
"""

from repro.bench.reporting import print_table
from repro.index.analysis import analyse_plans, fragmentation_vs_merge_gap
from repro.index.ranges import merge_values_to_ranges

EPS = 0.01
GAPS = (0, 1, 4, 16, 64)


def test_ablation_fragmentation(benchmark, tdrive_engine, tdrive_queries):
    report = analyse_plans(tdrive_engine, tdrive_queries, EPS)
    print()
    print("Plan quality at eps=0.01:")
    print(report.summary())

    sweep = fragmentation_vs_merge_gap(
        tdrive_engine, tdrive_queries, EPS, GAPS
    )
    rows = [[gap, sweep[gap]] for gap in GAPS]
    print_table(
        ["merge gap", "ranges/query"],
        rows,
        "Ablation: range fragmentation vs merge gap",
    )

    # Bridging gaps can only reduce (or keep) the range count.
    counts = [sweep[g] for g in GAPS]
    assert counts == sorted(counts, reverse=True)
    # The depth-first encoding should keep plans far below one range
    # per index space (the continuity the paper designed for).
    assert report.mean_ranges < report.mean_index_spaces

    benchmark.pedantic(
        lambda: analyse_plans(tdrive_engine, tdrive_queries[:3], EPS),
        rounds=3,
        iterations=1,
    )
