"""Execution performance layer — parallel scans and cache ablation.

Measures threshold-search throughput on one store across execution
configurations (the knobs are re-tuned in place between runs, so the
data, index and plan are held constant):

* ``seed``:    scan_workers=1, caches off — the pre-layer read path;
* ``workers``: scan_workers=4, caches off;
* ``cached``:  scan_workers=1, cache_mb=64, measured warm;
* ``both``:    scan_workers=4, cache_mb=64, measured warm.

plus a cache-budget ablation sweeping ``cache_mb`` and reporting the
block/record cache hit rates each budget buys.

Every run re-checks that answers are identical to the seed
configuration (the layer is a pure optimisation).  A JSON report is
printed and, when ``REPRO_BENCH_JSON`` names a file, written there for
tracking.

Paper-shape / acceptance check: ``both`` (warm) reaches >= 1.5x the
seed configuration's throughput.
"""

import json
import os
import time

from repro import TraSS
from repro.bench.reporting import print_table

from conftest import EPS_SWEEP

#: (label, scan_workers, cache_mb, plan_cache_size, warm passes).
#: ``seed``/``workers`` run with the plan cache off too, so the worker
#: column isolates the thread effect (on a single-CPU host it is
#: roughly neutral; the caches carry the speedup there).
CONFIGS = [
    ("seed", 1, 0.0, 0, 0),
    ("workers", 4, 0.0, 0, 0),
    ("cached", 1, 64.0, 128, 1),
    ("both", 4, 64.0, 128, 1),
]


def _run_pass(engine: TraSS, queries, eps_sweep):
    """One full workload pass; returns (seconds, answer map)."""
    answers = {}
    started = time.perf_counter()
    for eps in eps_sweep:
        for i, query in enumerate(queries):
            result = engine.threshold_search(query, eps)
            answers[(i, eps)] = sorted(result.answers.items())
    return time.perf_counter() - started, answers


def test_parallel_scan_and_cache_throughput(tdrive_engine, tdrive_queries):
    engine = tdrive_engine
    report = {"configs": [], "ablation": []}
    baseline_answers = None
    baseline_seconds = None
    rows = []
    try:
        for label, workers, cache_mb, plan_cache, warm_passes in CONFIGS:
            engine.configure_execution(
                scan_workers=workers,
                cache_mb=cache_mb,
                plan_cache_size=plan_cache,
            )
            for _ in range(warm_passes):
                _run_pass(engine, tdrive_queries, EPS_SWEEP)
            engine.metrics.reset()
            seconds, answers = _run_pass(engine, tdrive_queries, EPS_SWEEP)
            snap = engine.metrics.snapshot()
            if baseline_answers is None:
                baseline_answers, baseline_seconds = answers, seconds
            else:
                # The layer is a pure optimisation: answers are exact.
                assert answers == baseline_answers, label
            queries_per_s = len(tdrive_queries) * len(EPS_SWEEP) / seconds
            speedup = baseline_seconds / seconds
            rows.append(
                [label, workers, cache_mb, seconds * 1000, queries_per_s, speedup]
            )
            report["configs"].append(
                {
                    "label": label,
                    "scan_workers": workers,
                    "cache_mb": cache_mb,
                    "plan_cache_size": plan_cache,
                    "seconds": seconds,
                    "queries_per_second": queries_per_s,
                    "speedup_vs_seed": speedup,
                    "block_cache_hits": snap["block_cache_hits"],
                    "block_cache_misses": snap["block_cache_misses"],
                    "record_cache_hits": snap["record_cache_hits"],
                    "record_cache_misses": snap["record_cache_misses"],
                    "plan_cache_hits": snap["plan_cache_hits"],
                    "plan_cache_misses": snap["plan_cache_misses"],
                }
            )

        print_table(
            ["config", "workers", "cache MiB", "total ms", "q/s", "speedup"],
            rows,
            "Execution layer: threshold workload by configuration",
        )
        warm = next(c for c in report["configs"] if c["label"] == "both")
        assert warm["speedup_vs_seed"] >= 1.5, (
            "warm parallel+cached configuration must be >= 1.5x the seed "
            f"sequential throughput, got {warm['speedup_vs_seed']:.2f}x"
        )
    finally:
        engine.configure_execution(
            scan_workers=1, cache_mb=0.0, plan_cache_size=128
        )

    _emit_json(report)


def test_cache_budget_ablation(tdrive_engine, tdrive_queries):
    """Hit rates and time vs cache budget (workers held at 1)."""
    engine = tdrive_engine
    report = {"configs": [], "ablation": []}
    rows = []
    try:
        for cache_mb in (0.0, 1.0, 8.0, 64.0):
            # Plan cache held constant so the sweep isolates the
            # block/record tiers.
            engine.configure_execution(
                scan_workers=1, cache_mb=cache_mb, plan_cache_size=128
            )
            _run_pass(engine, tdrive_queries, EPS_SWEEP)  # warm
            engine.metrics.reset()
            seconds, _ = _run_pass(engine, tdrive_queries, EPS_SWEEP)
            snap = engine.metrics.snapshot()

            def rate(hits, misses):
                total = hits + misses
                return hits / total if total else 0.0

            block = rate(snap["block_cache_hits"], snap["block_cache_misses"])
            record = rate(
                snap["record_cache_hits"], snap["record_cache_misses"]
            )
            rows.append([cache_mb, seconds * 1000, block, record])
            report["ablation"].append(
                {
                    "cache_mb": cache_mb,
                    "seconds": seconds,
                    "block_hit_rate": block,
                    "record_hit_rate": record,
                }
            )
        print_table(
            ["cache MiB", "total ms", "block hit rate", "record hit rate"],
            rows,
            "Cache-budget ablation (warm, workers=1)",
        )
        # Shape: a real budget must produce real hits; zero budget none.
        assert report["ablation"][0]["block_hit_rate"] == 0.0
        assert report["ablation"][-1]["block_hit_rate"] > 0.5
    finally:
        engine.configure_execution(
            scan_workers=1, cache_mb=0.0, plan_cache_size=128
        )

    _emit_json(report)


def test_traced_phase_breakdown(tdrive_engine, tdrive_queries):
    """Per-phase tracer breakdown of the threshold workload, plus the
    metrics exporters.

    Runs the workload once under tracing, folds the span tree into
    prune / scan / refine totals, and exports the metrics registry both
    ways — asserting the Prometheus text parses, which is the CI gate
    for the exporter staying scrapeable.  When ``REPRO_OBS_JSON`` names
    a file the trace + metrics payload is written there (uploaded as a
    CI artifact).
    """
    from repro.obs.registry import parse_prometheus

    engine = tdrive_engine
    eps = EPS_SWEEP[len(EPS_SWEEP) // 2]
    with engine.traced() as tracer:
        for query in tdrive_queries:
            engine.threshold_search(query, eps)
    roots = tracer.traces()
    assert len(roots) == len(tdrive_queries)

    phase_totals = {"prune": 0.0, "scan": 0.0, "refine": 0.0}
    for root in roots:
        for name in phase_totals:
            for span in root.find(name):
                phase_totals[name] += span.duration
    total = sum(root.duration for root in roots)
    rows = [
        [name, seconds * 1000, (seconds / total if total else 0.0)]
        for name, seconds in phase_totals.items()
    ]
    print_table(
        ["phase", "total ms", "fraction of query time"],
        rows,
        f"Traced phase breakdown ({len(roots)} threshold queries, "
        f"eps={eps:g})",
    )

    prom = engine.export_metrics("prometheus")
    samples = parse_prometheus(prom)
    assert "trass_io_rows_scanned" in samples
    assert "trass_query_seconds_count" in samples
    assert samples["trass_query_seconds_count"] >= len(tdrive_queries)

    payload = {
        "eps": eps,
        "queries": len(roots),
        "phase_seconds": phase_totals,
        "trace_example": roots[0].to_dict(include_events=False),
        "metrics": engine.export_metrics("json"),
    }
    obs_path = os.environ.get("REPRO_OBS_JSON")
    if obs_path:
        with open(obs_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
    _emit_json({"observability": {k: payload[k] for k in ("eps", "queries", "phase_seconds")}})


def _emit_json(report: dict) -> None:
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as fh:
            fh.write(payload + "\n")
