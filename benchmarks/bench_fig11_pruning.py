"""Figure 11 — effect of the pruning strategies (eps = 0.01).

Three panels: (a) pruning time, (b) retrieved trajectories (global
pruning's filtration capacity), (c) precision (final answers over
candidates — local filtering's capacity).

Paper shape: TraSS spends the least time pruning, retrieves the fewest
trajectories, and has the highest precision.
"""

import statistics

from repro.bench.harness import run_threshold_workload
from repro.bench.reporting import print_table

EPS = 0.01


def test_fig11_pruning_strategies(
    benchmark, tdrive_engine, tdrive_baselines, tdrive_queries
):
    # TraSS pruning time measured directly from the result breakdown.
    pruning_times = []
    retrieved = []
    candidates = []
    answers = []
    for query in tdrive_queries:
        result = tdrive_engine.threshold_search(query, EPS)
        pruning_times.append(result.pruning_seconds * 1000)
        retrieved.append(result.retrieved_rows)
        candidates.append(result.candidates)
        answers.append(len(result.answers))

    rows = [
        [
            "TraSS",
            statistics.median(pruning_times),
            statistics.fmean(retrieved),
            (sum(answers) / sum(candidates)) if sum(candidates) else 1.0,
        ]
    ]
    for name, system in tdrive_baselines.items():
        stats = run_threshold_workload(system, tdrive_queries, EPS, name)
        rows.append(
            [name, stats.median_ms, stats.mean_retrieved, stats.precision]
        )

    print_table(
        ["system", "prune/query ms", "retrieved rows", "precision"],
        rows,
        f"Fig 11: pruning strategies (eps = {EPS})",
    )

    # Shape: TraSS retrieves no more rows than JUST (the 66.4% claim's
    # direction) and precision is sane.
    just = next(r for r in rows if r[0] == "JUST")
    assert rows[0][2] <= just[2]
    assert 0.0 <= rows[0][3] <= 1.0

    query = tdrive_queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.plan(query, EPS), rounds=3, iterations=1
    )
