"""Figure 17 — scalability on synthetic scaled datasets.

The paper copies the Lorry dataset ``t`` times (t = 1..5) and reports
indexing time, threshold-search time and top-k time.  Paper shape:
indexing grows linearly; query time grows slowly ("the query is
transformed as a set of key ranges ... the algorithm complexity does
not change with the increase of the number of trajectories"), and the
TraSS advantage widens with data size.
"""

import time

from repro import TraSS, TraSSConfig
from repro.bench.harness import run_threshold_workload, run_topk_workload
from repro.bench.reporting import print_table
from repro.data.generators import LORRY_BOUNDS, lorry_like, scaled
from repro.data.workload import sample_queries

from conftest import EARTH, scaled_size

SCALES = (1, 2, 3, 4)


def test_fig17_scalability(benchmark):
    base = lorry_like(scaled_size(250), seed=117)
    queries = sample_queries(base, 5, seed=118)
    rows = []
    for t in SCALES:
        data = scaled(base, t, seed=t)
        cfg = TraSSConfig(
            bounds=EARTH, max_resolution=16, dp_tolerance=0.01, shards=8
        )
        started = time.perf_counter()
        engine = TraSS.build(data, cfg)
        build_seconds = time.perf_counter() - started
        threshold_stats = run_threshold_workload(engine, queries, 0.01)
        topk_stats = run_topk_workload(engine, queries[:3], 10)
        rows.append(
            [
                f"x{t}",
                len(data),
                build_seconds,
                threshold_stats.median_ms,
                topk_stats.median_ms,
            ]
        )
    print_table(
        ["scale", "trajectories", "index time (s)", "threshold ms", "top-k ms"],
        rows,
        "Fig 17: scalability on synthetic scaled Lorry (eps=0.01, k=10)",
    )

    # Shape: indexing time grows with data size; query time grows far
    # slower than linearly (sub-2x over a 4x data growth is typical —
    # assert it at least stays under proportional growth).
    assert rows[-1][2] > rows[0][2]
    growth = rows[-1][3] / max(rows[0][3], 1e-9)
    assert growth < SCALES[-1] * 2

    benchmark.pedantic(
        lambda: scaled(base, 2, seed=9), rounds=3, iterations=1
    )
