"""Ablation — Douglas-Peucker tolerance (the paper's theta = 0.01).

Sweeps ``dp_tolerance`` and reports the feature footprint
(representative points per trajectory), local-filter power (exact
evaluations avoided), and end-to-end query time.

Expected trade-off: small theta keeps many representative points —
tighter bounds but more feature computation; large theta keeps almost
none — cheap features but leaky filtering.  The paper's 0.01 sits in
the flat middle.
"""

import statistics

from repro import TraSS, TraSSConfig
from repro.bench.harness import run_threshold_workload
from repro.bench.reporting import print_table
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.data.workload import sample_queries
from repro.features.dp_features import extract_dp_features

from conftest import EARTH, scaled_size

THETAS = (0.001, 0.005, 0.01, 0.05)
EPS = 0.01


def test_ablation_dp_tolerance(benchmark):
    data = tdrive_like(scaled_size(600), seed=211)
    queries = sample_queries(data, 6, seed=212)
    rows = []
    for theta in THETAS:
        cfg = TraSSConfig(
            bounds=EARTH,
            max_resolution=16,
            dp_tolerance=theta,
            shards=8,
        )
        engine = TraSS.build(data, cfg)
        stats = run_threshold_workload(engine, queries, EPS)
        mean_rep = statistics.fmean(
            extract_dp_features(t.points, theta).num_rep_points for t in data
        )
        rows.append(
            [
                theta,
                mean_rep,
                stats.median_ms,
                stats.mean_candidates,
                stats.precision,
            ]
        )
    print_table(
        ["theta", "rep points/traj", "median ms", "candidates", "precision"],
        rows,
        f"Ablation: DP tolerance sweep (eps={EPS})",
    )

    # Feature footprint shrinks monotonically with theta.
    footprints = [r[1] for r in rows]
    assert footprints == sorted(footprints, reverse=True)

    benchmark.pedantic(
        lambda: extract_dp_features(data[0].points, 0.01),
        rounds=5,
        iterations=1,
    )
