"""Figure 9 — threshold similarity search.

Reproduces both panels:

* 9(a): median query time vs ``eps`` for TraSS, JUST, DFT, DITA;
* 9(b): candidates remaining after pruning vs ``eps``.

Paper shape to check: TraSS fastest at every ``eps`` (one to two orders
of magnitude at small ``eps``), with by far the fewest candidates; all
systems grow with ``eps``.
"""

from repro.bench.harness import run_threshold_workload
from repro.bench.reporting import print_table

from conftest import EPS_SWEEP


def test_fig09_threshold_tdrive(
    benchmark, tdrive_engine, tdrive_baselines, tdrive_queries
):
    systems = {"TraSS": tdrive_engine, **tdrive_baselines}
    time_rows = []
    cand_rows = []
    for name, system in systems.items():
        time_row = [name]
        cand_row = [name]
        for eps in EPS_SWEEP:
            stats = run_threshold_workload(system, tdrive_queries, eps, name)
            time_row.append(stats.median_ms)
            cand_row.append(stats.mean_candidates)
        time_rows.append(time_row)
        cand_rows.append(cand_row)

    headers = ["system"] + [f"eps={e}" for e in EPS_SWEEP]
    print_table(headers, time_rows, "Fig 9(a) T-Drive: median query time (ms)")
    print_table(headers, cand_rows, "Fig 9(b) T-Drive: mean candidates")

    # Shape assertions: TraSS no slower and no less selective than JUST.
    trass_times = time_rows[0][1:]
    just_times = next(r for r in time_rows if r[0] == "JUST")[1:]
    assert sum(trass_times) <= sum(just_times)
    trass_cands = cand_rows[0][1:]
    just_cands = next(r for r in cand_rows if r[0] == "JUST")[1:]
    assert sum(trass_cands) <= sum(just_cands)

    query = tdrive_queries[0]
    benchmark.pedantic(
        lambda: tdrive_engine.threshold_search(query, 0.01),
        rounds=3,
        iterations=1,
    )
