"""Figure 19 — effect of the shard (salt) count.

The shard byte scatters hot index ranges across regions; every query
must scan each shard's copy of its key ranges.  Paper shape: too few
shards concentrate similar trajectories (skew), too many multiply the
per-query range scans (communication), with a sweet spot in between
(8 on the paper's five-node cluster).

On an embedded store the skew half of the trade-off is invisible (no
parallel region servers), so the visible shape is the range-scan
multiplication: ``range_seeks`` grows linearly with shards while answer
sets stay identical.
"""

import statistics

from repro import TraSS, TraSSConfig
from repro.bench.harness import run_threshold_workload
from repro.bench.reporting import print_table
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.data.workload import sample_queries
from repro.kvstore.cluster import ClusterModel

from conftest import EARTH, scaled_size

SHARDS = (1, 2, 4, 8, 16)
EPS = 0.01
NODES = 5  # the paper's cluster size


def test_fig19_shards(benchmark):
    data = tdrive_like(scaled_size(600), seed=119)
    queries = sample_queries(data, 6, seed=120)
    rows = []
    answer_sets = []
    for shards in SHARDS:
        cfg = TraSSConfig(
            bounds=EARTH,
            max_resolution=16,
            dp_tolerance=0.01,
            shards=shards,
            max_region_rows=80,  # force enough regions to spread
        )
        engine = TraSS.build(data, cfg)
        engine.metrics.reset()
        stats = run_threshold_workload(engine, queries, EPS)
        seeks = engine.metrics.range_seeks
        # Five-node cluster model: per-query makespan and skew.
        model = ClusterModel(engine.store.table, nodes=NODES)
        makespans = []
        skews = []
        for query in queries:
            plan = engine.plan(query, EPS)
            scan_ranges = engine.store.scan_ranges_for(plan.ranges)
            makespans.append(model.makespan(scan_ranges))
            skews.append(model.skew(scan_ranges))
        rows.append(
            [
                shards,
                stats.median_ms,
                seeks,
                statistics.fmean(skews),
                statistics.fmean(makespans),
            ]
        )
        answer_sets.append(
            frozenset(
                frozenset(engine.threshold_search(q, EPS).answers)
                for q in queries
            )
        )
    print_table(
        ["shards", "median ms", "range seeks", "node skew", "model makespan"],
        rows,
        f"Fig 19: shard sweep (eps={EPS}, {NODES}-node cluster model)",
    )

    # Shape: range seeks grow with the shard count; skew shrinks from
    # 1 shard to 8 shards (the paper's data-skew argument); answers
    # identical across configurations.
    seeks = [r[2] for r in rows]
    assert seeks == sorted(seeks)
    skew_by_shards = {r[0]: r[3] for r in rows}
    assert skew_by_shards[8] <= skew_by_shards[1]
    assert all(s == answer_sets[0] for s in answer_sets)

    benchmark.pedantic(
        lambda: run_threshold_workload(
            TraSS.build(data[:100], TraSSConfig(bounds=TDRIVE_BOUNDS, shards=8)),
            queries[:2],
            EPS,
        ),
        rounds=1,
        iterations=1,
    )
