"""Figure 13 — indexing overhead.

* 13(a)/(b): indexing (build) time per system.  Paper shape: the static
  indexes (TraSS, JUST) ingest faster than the dynamic ones (DFT, DITA,
  REPOSE), with the gap growing on bigger data.
* 13(c): average row-key bytes, TraSS integer encoding vs TraSS-S
  string encoding.  Paper: integer keys save 32% (T-Drive) / 27%
  (Lorry).
"""

import time

from repro import TraSS
from repro.baselines import DFTBaseline, DITABaseline, JustXZ2Baseline, REPOSEBaseline
from repro.bench.reporting import print_table
from repro.core.storage import STRING_KEYS
from repro.data.generators import TDRIVE_BOUNDS

from conftest import EARTH, scaled_size
from repro.data.generators import tdrive_like


def test_fig13_indexing_time_and_rowkey_overhead(benchmark, tdrive_config):
    data = tdrive_like(scaled_size(600), seed=113)

    def timed_build(factory):
        started = time.perf_counter()
        system = factory()
        if isinstance(system, TraSS):
            system.add_all(data)
        else:
            system.build(data)
        return system, time.perf_counter() - started

    factories = {
        "TraSS": lambda: TraSS(tdrive_config),
        "JUST": lambda: JustXZ2Baseline(
            max_resolution=16, bounds=EARTH, shards=8
        ),
        "DFT": lambda: DFTBaseline(),
        "DITA": lambda: DITABaseline(cell_size=0.02),
        "REPOSE": lambda: REPOSEBaseline(num_references=3),
    }
    rows = []
    built = {}
    for name, factory in factories.items():
        system, seconds = timed_build(factory)
        built[name] = system
        rows.append([name, seconds])
    print_table(
        ["system", "indexing time (s)"],
        rows,
        "Fig 13(a): indexing time",
    )

    # Shape: static indexes (TraSS, JUST) build faster than REPOSE,
    # whose reference-distance precomputation dominates.
    times = dict((name, secs) for name, secs in rows)
    assert times["TraSS"] < times["REPOSE"]
    assert times["JUST"] < times["REPOSE"]

    # 13(c): row-key storage, integer vs string encoding.
    int_engine = built["TraSS"]
    str_engine = TraSS(tdrive_config, key_encoding=STRING_KEYS)
    str_engine.add_all(data)
    int_bytes = int_engine.store.average_rowkey_bytes()
    str_bytes = str_engine.store.average_rowkey_bytes()
    saving = 100.0 * (1.0 - int_bytes / str_bytes)
    print_table(
        ["encoding", "avg rowkey bytes"],
        [["TraSS (integer)", int_bytes], ["TraSS-S (string)", str_bytes]],
        f"Fig 13(c): rowkey overhead (integer saves {saving:.1f}%)",
    )
    # Paper reports 32% (T-Drive) / 27% (Lorry); shape: substantial
    # double-digit saving.
    assert saving > 15.0

    benchmark.pedantic(
        lambda: TraSS(tdrive_config).add_all(data[:100]),
        rounds=3,
        iterations=1,
    )
